//! `reproduce` — regenerate every figure of the SMapReduce paper.
//!
//! ```text
//! reproduce all [--quick] [--out DIR]        # every figure + ext-hetero
//! reproduce fig1|fig3|fig4|fig5|fig6|fig7|fig8|fig9 [--quick] [--out DIR]
//! reproduce ext-hetero|ext-stragglers|ext-fair|ext-load   # extensions
//! reproduce ablations|model-check            # knob sweeps / §III-B1 check
//! reproduce headline [--quick]               # §V-A claims only
//! reproduce <fig> --trace trace.json         # + Chrome/Perfetto trace
//! ```
//!
//! Each figure prints its plain-text rendering and writes `<fig>.txt` +
//! `<fig>.json` under the output directory (default `results/`). Every
//! figure's JSON carries a `perf` block (steps simulated, simulated
//! seconds covered, wall time, steps/s, peak recorder memory) and a
//! `counters` block (the Hadoop-style cluster counters the target's runs
//! accumulated, also appended to the text rendering). Every run is passed
//! through the invariant auditor; a violation fails the invocation. With
//! `--engine fixed|adaptive` every run in the invocation is pinned to one
//! stepping mode (default: each config's own, i.e. adaptive). The
//! `engine-bench` target runs a paper workload under *both* modes and
//! writes `BENCH_engine.json` with the step ratio and wall speedup. With
//! `--trace FILE`, telemetry is enabled for the whole invocation and one
//! Chrome-trace JSON — engine step-phase spans, task-lifecycle instants,
//! slot-manager decision audits, slot-target counters — is written to
//! FILE (open it in `ui.perfetto.dev`); if the recorder's rings wrapped,
//! a warning reports how many spans/samples the trace is missing. With
//! `--dashboard DIR`, each target additionally re-runs its representative
//! configuration with event recording on and writes
//! `DIR/<target>_dashboard.html` — a self-contained flight-recorder page
//! (per-node task Gantt, slot occupancy, utilization timelines, decision
//! markers, counters, auditor verdict).

use checkpoint::CapsuleFormat;
use harness::scale::Scale;
use harness::{
    ablation, bench_all, capsule_bench, capsules, engine_bench, ext_fair, ext_faults, ext_hetero,
    ext_load, ext_stragglers, fig1, fig3, fig4, fig5, fig6, fig7, fig89, model_check, output,
    scale_bench, serve_bench, summary, sweep_bench, targets,
};
use simgrid::time::{SimDuration, SteppingMode};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    target: String,
    /// Extra positional operands: the target for `fingerprint`, the
    /// capsule file for `resume`, the two stream directories for `bisect`.
    operands: Vec<String>,
    scale: Scale,
    out: PathBuf,
    trace: Option<PathBuf>,
    dashboard: Option<PathBuf>,
    engine: Option<SteppingMode>,
    checkpoint_every: Option<SimDuration>,
    capsule_dir: Option<PathBuf>,
    capsule_format: CapsuleFormat,
    via: capsules::Via,
    hash_trace: bool,
    /// `serve`: wall-clock tick interval (ms).
    tick_ms: u64,
    /// `serve`: simulated seconds advanced per wall second.
    dilation: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut positionals = Vec::new();
    let mut scale = Scale::Full;
    let mut out = PathBuf::from("results");
    let mut trace = None;
    let mut dashboard = None;
    let mut engine = None;
    let mut checkpoint_every = None;
    let mut capsule_dir = None;
    let mut capsule_format = CapsuleFormat::Json;
    let mut via = capsules::Via::Straight;
    let mut hash_trace = false;
    let mut tick_ms = 20u64;
    let mut dilation = 50.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Quick,
            "--out" => {
                out = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            "--trace" => {
                trace = Some(PathBuf::from(it.next().ok_or("--trace needs a file")?));
            }
            "--dashboard" => {
                dashboard = Some(PathBuf::from(
                    it.next().ok_or("--dashboard needs a directory")?,
                ));
            }
            "--engine" => {
                engine = Some(
                    match it.next().ok_or("--engine needs fixed|adaptive")?.as_str() {
                        "fixed" => SteppingMode::Fixed,
                        "adaptive" => SteppingMode::Adaptive,
                        other => {
                            return Err(format!("--engine must be fixed|adaptive, got {other}"))
                        }
                    },
                );
            }
            "--checkpoint-every" => {
                let secs: u64 = it
                    .next()
                    .ok_or("--checkpoint-every needs seconds")?
                    .parse()
                    .map_err(|_| "--checkpoint-every needs a whole number of seconds")?;
                if secs == 0 {
                    return Err("--checkpoint-every must be non-zero".into());
                }
                checkpoint_every = Some(SimDuration::from_secs(secs));
            }
            "--capsule-dir" => {
                capsule_dir = Some(PathBuf::from(
                    it.next().ok_or("--capsule-dir needs a directory")?,
                ));
            }
            "--via" => {
                via = capsules::Via::parse(&it.next().ok_or("--via needs straight|resume")?)?;
            }
            "--capsule-format" => {
                let s = it.next().ok_or("--capsule-format needs json|bin")?;
                capsule_format = CapsuleFormat::parse(&s)
                    .ok_or_else(|| format!("--capsule-format must be json|bin, got {s}"))?;
            }
            "--hash-trace" => hash_trace = true,
            "--tick-ms" => {
                tick_ms = it
                    .next()
                    .ok_or("--tick-ms needs milliseconds")?
                    .parse()
                    .map_err(|_| "--tick-ms needs a whole number of milliseconds")?;
                if tick_ms == 0 {
                    return Err("--tick-ms must be non-zero".into());
                }
            }
            "--dilation" => {
                dilation = it
                    .next()
                    .ok_or("--dilation needs a factor")?
                    .parse()
                    .map_err(|_| "--dilation needs a number")?;
                if !dilation.is_finite() || dilation <= 0.0 {
                    return Err("--dilation must be a positive number".into());
                }
            }
            "--help" | "-h" => return Err(format!("{USAGE}\n\n{}", targets::render_list())),
            other if other.starts_with("--") => {
                return Err(format!("unexpected argument: {other}\n{USAGE}"))
            }
            other => positionals.push(other.to_string()),
        }
    }
    let mut positionals = positionals.into_iter();
    let target = positionals.next().unwrap_or_else(|| "all".to_string());
    let operands: Vec<String> = positionals.collect();
    let takes_operands = matches!(
        target.as_str(),
        "fingerprint" | "resume" | "bisect" | "serve"
    );
    if !takes_operands && !operands.is_empty() {
        return Err(format!("unexpected argument: {}\n{USAGE}", operands[0]));
    }
    Ok(Args {
        target,
        operands,
        scale,
        out,
        trace,
        dashboard,
        engine,
        checkpoint_every,
        capsule_dir,
        capsule_format,
        via,
        hash_trace,
        tick_ms,
        dilation,
    })
}

const USAGE: &str = "usage: reproduce [TARGET] [--quick] [--out DIR] [--trace FILE] [--dashboard DIR] [--engine fixed|adaptive]
       reproduce <target> --checkpoint-every SECS --capsule-dir DIR [--capsule-format json|bin]   # record the target's representative run as a capsule stream + hash trace
       reproduce fingerprint <target> [--via straight|resume] [--capsule-dir DIR] [--capsule-format json|bin] [--hash-trace]   # print the representative run's auditor fingerprint (+ per-step hash digest)
       reproduce resume CAPSULE.{json,bin}                            # resume a capsule to completion
       reproduce bisect DIR_A DIR_B [--hash-trace]                    # first divergent checkpoint (or hash-trace step) of two streams (exit 1 if diverged)
       reproduce serve [ADDR] [--tick-ms MS] [--dilation X]           # realtime NDJSON service (default 127.0.0.1:7700)
       reproduce --help                                               # full target list with descriptions";

/// The perf-summary block every figure JSON carries.
fn perf_block(steps: u64, sim_seconds: f64, wall: std::time::Duration) -> serde_json::Value {
    let telem = harness::runner::active_telemetry();
    let secs = wall.as_secs_f64();
    let mut perf = serde_json::Value::Object(Vec::new());
    perf.set("steps", serde_json::Value::U64(steps));
    perf.set("sim_seconds", serde_json::Value::F64(sim_seconds));
    perf.set("wall_seconds", serde_json::Value::F64(secs));
    perf.set(
        "steps_per_second",
        serde_json::Value::F64(if secs > 0.0 { steps as f64 / secs } else { 0.0 }),
    );
    perf.set(
        "steps_per_sim_second",
        serde_json::Value::F64(if sim_seconds > 0.0 {
            steps as f64 / sim_seconds
        } else {
            0.0
        }),
    );
    perf.set(
        "engine",
        serde_json::Value::String(
            match harness::runner::engine_mode() {
                Some(SteppingMode::Fixed) => "fixed",
                Some(SteppingMode::Adaptive) => "adaptive",
                None => "adaptive (default)",
            }
            .to_string(),
        ),
    );
    perf.set(
        "peak_recorder_bytes",
        serde_json::Value::U64(telem.memory_bytes() as u64),
    );
    perf
}

/// Targets with a representative run the checkpoint tooling can record
/// and fingerprint (everything except the meta targets).
const CAPSULE_TARGETS: &[&str] = &[
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ext-hetero",
    "ext-stragglers",
    "ext-fair",
    "ext-load",
    "ext-faults",
    "ablations",
    "model-check",
    "headline",
];

fn check_capsule_target(target: &str) -> Result<(), String> {
    if CAPSULE_TARGETS.contains(&target) {
        Ok(())
    } else {
        Err(format!(
            "no representative run for target {target}\n{USAGE}"
        ))
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}

/// `reproduce fingerprint <target> [--via straight|resume]`.
fn run_fingerprint(args: &Args, scale: Scale) -> ExitCode {
    let Some(target) = args.operands.first() else {
        return fail(&format!("fingerprint needs a target\n{USAGE}"));
    };
    if let Err(msg) = check_capsule_target(target) {
        return fail(&msg);
    }
    match capsules::fingerprint_target(
        target,
        scale,
        args.via,
        args.capsule_dir.as_deref(),
        args.capsule_format,
        args.hash_trace,
    ) {
        Ok(line) => {
            print!("{line}");
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}

/// `reproduce <target> --checkpoint-every SECS --capsule-dir DIR`.
fn run_record(args: &Args, scale: Scale, every: SimDuration) -> ExitCode {
    let Some(dir) = &args.capsule_dir else {
        return fail("--checkpoint-every needs --capsule-dir DIR");
    };
    if args.target == "all" {
        return fail("--checkpoint-every records one target's representative run; name it");
    }
    if let Err(msg) = check_capsule_target(&args.target) {
        return fail(&msg);
    }
    match capsules::record_target(&args.target, scale, every, dir, args.capsule_format) {
        Ok(rec) => {
            println!(
                "[wrote {} {} capsules (every {:.0}s of a {:.1}s run) and a \
                 {}-step hash trace to {}]\n\
                 fingerprint {:#018x}",
                rec.capsules,
                args.capsule_format,
                rec.every_s,
                rec.makespan_s,
                rec.hash_points,
                rec.dir.display(),
                rec.fingerprint
            );
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}

/// `reproduce resume CAPSULE.json`.
fn run_resume(args: &Args) -> ExitCode {
    let Some(path) = args.operands.first() else {
        return fail(&format!("resume needs a capsule file\n{USAGE}"));
    };
    match capsules::resume_capsule(Path::new(path)) {
        Ok(summary) => {
            print!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}

/// `reproduce serve [ADDR]` — run the realtime service until a client
/// sends `shutdown` (or the process is killed).
fn run_serve(args: &Args) -> ExitCode {
    let addr = args
        .operands
        .first()
        .map(String::as_str)
        .unwrap_or("127.0.0.1:7700");
    let cfg = realtime::ServiceConfig {
        tick_interval: std::time::Duration::from_millis(args.tick_ms),
        dilation: args.dilation,
        ..realtime::ServiceConfig::default()
    };
    let quantum_ms = cfg.quantum_ms();
    let handle = realtime::RealtimeService::spawn(cfg);
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let result = realtime::wire::serve(handle.clone(), addr, stop, |bound| {
        println!(
            "[realtime service on {bound}: {} ms/tick, {quantum_ms} sim-ms quantum; \
             NDJSON commands: create_tenant submit_job inject_fault pause resume \
             snapshot observe stats tenants shutdown]",
            args.tick_ms
        );
    });
    match result {
        Ok(()) => {
            if let Ok(summary) = handle.shutdown() {
                println!(
                    "[served {} tick(s), {} tenant(s), {} command(s)]",
                    summary.ticks,
                    summary.tenants.len(),
                    summary.commands_applied
                );
                if let Some(script) = &summary.script {
                    let outcome = script.replay();
                    if outcome.verified {
                        println!(
                            "[replay verified: {} hash point(s) across {} tenant(s)]",
                            outcome.points_checked, outcome.tenants
                        );
                    } else {
                        for m in &outcome.mismatches {
                            eprintln!("replay mismatch: {m}");
                        }
                        return fail("recorded ingress script did not replay to the live hashes");
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}

/// `reproduce bench-all` — aggregate every BENCH_*.json in the out dir.
fn run_bench_all(args: &Args) -> ExitCode {
    match bench_all::run(&args.out) {
        Ok(summary) => {
            print!("{}", bench_all::render(&summary));
            ExitCode::SUCCESS
        }
        Err(msg) => fail(&msg),
    }
}

/// `reproduce bisect DIR_A DIR_B` — exit 0 when the streams are
/// identical, 1 when they diverge (with the first divergent checkpoint
/// and its field diff on stdout).
fn run_bisect(args: &Args) -> ExitCode {
    let [dir_a, dir_b] = args.operands.as_slice() else {
        return fail(&format!("bisect needs two capsule directories\n{USAGE}"));
    };
    if args.hash_trace {
        return match checkpoint::bisect_hash_traces(Path::new(dir_a), Path::new(dir_b)) {
            Ok(div) => {
                print!("{}", capsules::render_trace_divergence(&div));
                if div.is_none() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => fail(&e.to_string()),
        };
    }
    match checkpoint::bisect_dirs(Path::new(dir_a), Path::new(dir_b)) {
        Ok(div) => {
            print!("{}", capsules::render_divergence(&div));
            if div.is_none() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(&e.to_string()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.trace.is_some() {
        harness::runner::install_telemetry(telemetry::Telemetry::enabled());
    }
    if let Some(mode) = args.engine {
        if args.target == "engine-bench" {
            eprintln!("engine-bench runs both modes itself; drop --engine");
            return ExitCode::FAILURE;
        }
        harness::runner::set_engine_mode(mode);
    }
    let scale = args.scale;
    // checkpoint & replay subcommands run and exit before the figure loop
    match args.target.as_str() {
        "fingerprint" => return run_fingerprint(&args, scale),
        "resume" => return run_resume(&args),
        "bisect" => return run_bisect(&args),
        "serve" => return run_serve(&args),
        "bench-all" => return run_bench_all(&args),
        _ => {}
    }
    if let Some(every) = args.checkpoint_every {
        return run_record(&args, scale, every);
    }
    if args.capsule_dir.is_some() {
        eprintln!("--capsule-dir needs --checkpoint-every (or the fingerprint subcommand)");
        return ExitCode::FAILURE;
    }
    let run_one = |name: &str| -> Result<(), String> {
        let steps_before = harness::runner::total_steps();
        let sim_before = harness::runner::total_sim_seconds();
        let counters_before = harness::runner::counters_snapshot();
        let wall_start = std::time::Instant::now();
        let (text, json): (String, serde_json::Value) = match name {
            "fig1" => {
                let d = fig1::run(scale);
                let _ = output::write_gnuplot(&args.out, "fig1", &fig1::to_gnuplot(&d));
                (
                    fig1::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "fig3" => {
                let d = fig3::run(scale);
                let mut text = fig3::render(&d);
                text.push('\n');
                text.push_str(&summary::render(&summary::headline_claims(&d)));
                (text, serde_json::to_value(&d).expect("serialise"))
            }
            "fig4" => {
                let d = fig4::run(scale);
                (
                    fig4::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "fig5" => {
                let d = fig5::run(scale);
                let _ = output::write_gnuplot(&args.out, "fig5", &fig5::to_gnuplot(&d));
                (
                    fig5::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "fig6" => {
                let d = fig6::run(scale);
                let _ = output::write_gnuplot(&args.out, "fig6", &fig6::to_gnuplot(&d));
                (
                    fig6::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "fig7" => {
                let d = fig7::run(scale);
                (
                    fig7::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "fig8" => {
                let d = fig89::run_fig8(scale);
                (
                    fig89::render(&d, 8),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "fig9" => {
                let d = fig89::run_fig9(scale);
                (
                    fig89::render(&d, 9),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "ablations" => {
                let d = ablation::run(scale);
                (
                    ablation::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "model-check" => {
                let d = model_check::run(scale);
                (
                    model_check::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "ext-load" => {
                let d = ext_load::run(scale);
                (
                    ext_load::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "ext-fair" => {
                let d = ext_fair::run(scale);
                (
                    ext_fair::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "ext-faults" => {
                let d = ext_faults::run(scale);
                (
                    ext_faults::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "ext-stragglers" => {
                let d = ext_stragglers::run(scale);
                (
                    ext_stragglers::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "ext-hetero" => {
                let d = ext_hetero::run(scale);
                (
                    ext_hetero::render(&d),
                    serde_json::to_value(&d).expect("serialise"),
                )
            }
            "headline" => {
                let d = fig3::run(scale);
                let claims = summary::headline_claims(&d);
                (
                    summary::render(&claims),
                    serde_json::to_value(&claims).expect("serialise"),
                )
            }
            "engine-bench" => {
                let d = engine_bench::run(scale);
                let json = serde_json::to_value(&d).expect("serialise");
                let path = args.out.join("BENCH_engine.json");
                std::fs::create_dir_all(&args.out).map_err(|e| e.to_string())?;
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&json).unwrap_or_default(),
                )
                .map_err(|e| e.to_string())?;
                println!("[wrote {}]", path.display());
                (engine_bench::render(&d), json)
            }
            "sweep-bench" => {
                let d = sweep_bench::run(scale);
                let json = serde_json::to_value(&d).expect("serialise");
                let path = args.out.join("BENCH_sweep.json");
                std::fs::create_dir_all(&args.out).map_err(|e| e.to_string())?;
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&json).unwrap_or_default(),
                )
                .map_err(|e| e.to_string())?;
                println!("[wrote {}]", path.display());
                (sweep_bench::render(&d), json)
            }
            "scale-bench" => {
                let d = scale_bench::run(scale);
                let json = serde_json::to_value(&d).expect("serialise");
                let path = args.out.join("BENCH_scale.json");
                std::fs::create_dir_all(&args.out).map_err(|e| e.to_string())?;
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&json).unwrap_or_default(),
                )
                .map_err(|e| e.to_string())?;
                println!("[wrote {}]", path.display());
                (scale_bench::render(&d), json)
            }
            "capsule-bench" => {
                let d = capsule_bench::run(scale);
                let json = serde_json::to_value(&d).expect("serialise");
                let path = args.out.join("BENCH_capsule.json");
                std::fs::create_dir_all(&args.out).map_err(|e| e.to_string())?;
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&json).unwrap_or_default(),
                )
                .map_err(|e| e.to_string())?;
                println!("[wrote {}]", path.display());
                (capsule_bench::render(&d), json)
            }
            "serve-bench" => {
                let d = serve_bench::run(scale);
                let json = serde_json::to_value(&d).expect("serialise");
                let path = args.out.join("BENCH_serve.json");
                std::fs::create_dir_all(&args.out).map_err(|e| e.to_string())?;
                std::fs::write(
                    &path,
                    serde_json::to_string_pretty(&json).unwrap_or_default(),
                )
                .map_err(|e| e.to_string())?;
                println!("[wrote {}]", path.display());
                let violations = serve_bench::gate(&d);
                if !violations.is_empty() {
                    println!("{}", serve_bench::render(&d));
                    return Err(format!(
                        "serve-bench gate violations: {}",
                        violations.join("; ")
                    ));
                }
                (serve_bench::render(&d), json)
            }
            other => return Err(targets::unknown(other)),
        };
        let perf = perf_block(
            harness::runner::total_steps() - steps_before,
            harness::runner::total_sim_seconds() - sim_before,
            wall_start.elapsed(),
        );
        let counters = harness::runner::counters_snapshot().delta_from(&counters_before);
        // non-object payloads (e.g. headline's claim list) get wrapped so
        // the perf block always has somewhere to live
        let mut json = match json {
            obj @ serde_json::Value::Object(_) => obj,
            other => {
                let mut wrapped = serde_json::Value::Object(Vec::new());
                wrapped.set("data", other);
                wrapped
            }
        };
        json.set("perf", perf);
        json.set(
            "counters",
            serde_json::to_value(&counters).expect("serialise"),
        );
        let mut text = text;
        text.push_str("\nCluster counters (all runs of this target):\n");
        if counters.is_zero() {
            text.push_str("  (none)\n");
        } else {
            text.push_str(&counters.render_table("  "));
        }
        println!("{text}");
        let (txt, js) =
            output::write_outputs(&args.out, name, &text, &json).map_err(|e| e.to_string())?;
        println!("[wrote {} and {}]\n", txt.display(), js.display());
        if let Some(dir) = &args.dashboard {
            let html = harness::dashboard::render_for_target(name, scale)
                .map_err(|e| format!("{name} dashboard run failed: {e}"))?;
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            let path = dir.join(format!("{name}_dashboard.html"));
            std::fs::write(&path, html).map_err(|e| e.to_string())?;
            println!("[wrote dashboard {}]\n", path.display());
        }
        Ok(())
    };

    let targets: Vec<&str> = if args.target == "all" {
        vec![
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "ext-hetero",
        ]
    } else {
        vec![args.target.as_str()]
    };
    for t in targets {
        if let Err(msg) = run_one(t) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.trace {
        let telem = harness::runner::active_telemetry();
        match telem.chrome_trace() {
            Some(trace) => {
                if let Err(e) = std::fs::write(path, trace) {
                    eprintln!("failed to write trace {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("[wrote trace {} — open in ui.perfetto.dev]", path.display());
                let (ds, dc) = (telem.dropped_spans(), telem.dropped_counter_samples());
                if ds > 0 || dc > 0 {
                    eprintln!(
                        "warning: recorder rings wrapped — trace is missing the oldest \
                         {ds} span(s) and {dc} counter sample(s); raise the ring \
                         capacities to keep the whole run"
                    );
                }
            }
            None => {
                eprintln!("internal error: --trace given but telemetry disabled");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

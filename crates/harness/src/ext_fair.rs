//! Extension experiment — FIFO vs Fair scheduling under mixed job sizes.
//!
//! Not a paper figure. The paper's multi-job study (§V-F) uses identical
//! jobs, where FIFO is inoffensive; the classic pathology appears when a
//! monster job is followed by small interactive ones. This experiment
//! submits one large Grep and three small ones and compares FIFO against
//! the (simplified, equal-share) Fair Scheduler — under plain HadoopV1 and
//! under SMapReduce, showing that runtime slot management and fair job
//! ordering are orthogonal and compose.

use crate::runner::{run_cells, CellRequest, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::{EngineConfig, SchedKind};
use serde::{Deserialize, Serialize};
use simgrid::time::SimTime;
use workloads::Puma;

/// One (scheduler, system) outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairCell {
    pub scheduler: String,
    pub system: String,
    /// Mean execution (submit → finish) of the three small jobs (s).
    pub small_mean_s: f64,
    /// Execution time of the large job (s).
    pub large_s: f64,
    pub makespan_s: f64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtFair {
    pub cells: Vec<FairCell>,
}

impl ExtFair {
    pub fn cell(&self, scheduler: &str, system: &str) -> &FairCell {
        self.cells
            .iter()
            .find(|c| c.scheduler == scheduler && c.system == system)
            .unwrap_or_else(|| panic!("no cell {scheduler}/{system}"))
    }
}

/// One large job at t=0, three small ones trailing it.
///
/// Reduce counts are sized so all four jobs' reducers fit the cluster's 32
/// reduce slots at once (8 each): without that, the large job's reducers
/// hoard the slots for its whole lifetime and drown the comparison in the
/// *other* classic fair-scheduler pathology (reduce-slot hoarding, which
/// real Hadoop addressed with preemption — out of scope here).
pub fn workload(scale: Scale) -> Vec<mapreduce::JobSpec> {
    let large = scale.input(30.0 * 1024.0);
    let small = scale.input(4.0 * 1024.0);
    vec![
        Puma::Grep.job(0, large, 8, SimTime::ZERO),
        Puma::Grep.job(1, small, 8, SimTime::from_secs(5)),
        Puma::Grep.job(2, small, 8, SimTime::from_secs(10)),
        Puma::Grep.job(3, small, 8, SimTime::from_secs(15)),
    ]
}

/// Run the grid — four cold cells in one batch over the bounded pool.
pub fn run(scale: Scale) -> ExtFair {
    let mut labels = Vec::new();
    let mut requests = Vec::new();
    for (sched_label, kind) in [("FIFO", SchedKind::Fifo), ("Fair", SchedKind::Fair)] {
        for sys in [System::HadoopV1, System::SMapReduce] {
            let mut cfg = EngineConfig::paper_default();
            cfg.scheduler = kind;
            let seed = cfg.seed;
            requests.push(CellRequest::cold(cfg, workload(scale), sys, seed));
            labels.push(sched_label);
        }
    }
    let reports = run_cells(&requests).reports;
    let cells = labels
        .into_iter()
        .zip(reports)
        .map(|(sched_label, r)| {
            let r = r.expect("fair run");
            let small_mean_s = r.jobs[1..]
                .iter()
                .map(|j| j.execution_time().as_secs_f64())
                .sum::<f64>()
                / 3.0;
            FairCell {
                scheduler: sched_label.to_string(),
                system: r.policy.clone(),
                small_mean_s,
                large_s: r.jobs[0].execution_time().as_secs_f64(),
                makespan_s: r.makespan().as_secs_f64(),
            }
        })
        .collect();
    ExtFair { cells }
}

/// Plain-text rendering.
pub fn render(e: &ExtFair) -> String {
    let mut out =
        String::from("Extension — FIFO vs Fair scheduling (1 large + 3 small Grep jobs)\n\n");
    let headers = [
        "scheduler",
        "system",
        "small mean(s)",
        "large(s)",
        "makespan(s)",
    ];
    let rows: Vec<Vec<String>> = e
        .cells
        .iter()
        .map(|c| {
            vec![
                c.scheduler.clone(),
                c.system.clone(),
                table::secs(c.small_mean_s),
                table::secs(c.large_s),
                table::secs(c.makespan_s),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    let speedup = |sys: &str| e.cell("FIFO", sys).small_mean_s / e.cell("Fair", sys).small_mean_s;
    out.push_str(&format!(
        "\nsmall-job mean speedup from Fair: HadoopV1 {:.2}x, SMapReduce {:.2}x\n",
        speedup("HadoopV1"),
        speedup("SMapReduce"),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_once;

    #[test]
    fn fair_rescues_small_jobs() {
        // a large job big enough to actually block the queue: 20 GB ahead
        // of three 2 GB jobs (quick-scale `run()` shrinks the large job to
        // under two waves, where FIFO barely delays anyone)
        let jobs = vec![
            Puma::Grep.job(0, 20.0 * 1024.0, 8, SimTime::ZERO),
            Puma::Grep.job(1, 2.0 * 1024.0, 8, SimTime::from_secs(5)),
            Puma::Grep.job(2, 2.0 * 1024.0, 8, SimTime::from_secs(10)),
            Puma::Grep.job(3, 2.0 * 1024.0, 8, SimTime::from_secs(15)),
        ];
        let measure = |kind: SchedKind| {
            let mut cfg = EngineConfig::paper_default();
            cfg.scheduler = kind;
            let r = run_once(&cfg, jobs.clone(), &System::HadoopV1, cfg.seed).unwrap();
            (
                r.jobs[1..]
                    .iter()
                    .map(|j| j.execution_time().as_secs_f64())
                    .sum::<f64>()
                    / 3.0,
                r.jobs[0].execution_time().as_secs_f64(),
            )
        };
        let (fifo_small, fifo_large) = measure(SchedKind::Fifo);
        let (fair_small, fair_large) = measure(SchedKind::Fair);
        assert!(
            fair_small < fifo_small * 0.6,
            "fair must cut small-job latency substantially ({fair_small} vs {fifo_small})"
        );
        assert!(
            fair_large >= fifo_large,
            "the large job pays for the sharing ({fair_large} vs {fifo_large})"
        );
    }

    #[test]
    fn grid_runs_and_renders() {
        let e = run(Scale::Quick);
        assert_eq!(e.cells.len(), 4);
        let text = render(&e);
        assert!(text.contains("FIFO") && text.contains("Fair"));
        // fair is at least not worse for the small jobs at reduced scale
        for sys in ["HadoopV1", "SMapReduce"] {
            assert!(
                e.cell("Fair", sys).small_mean_s <= e.cell("FIFO", sys).small_mean_s * 1.02,
                "{sys}"
            );
        }
    }
}

//! Figure 3 — per-benchmark execution times on HadoopV1, YARN and
//! SMapReduce (map time + reduce time, stacked), plus the §V-A headline
//! numbers.
//!
//! Expected shape: SMapReduce has the shortest map and total times on
//! nearly every benchmark, with the largest wins on map-heavy jobs;
//! Terasort is the one exception, where the default configuration happens
//! to be optimal and SMapReduce's management overhead makes it *slightly*
//! slower.

use crate::runner::run_comparison;
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use workloads::Puma;

/// One (benchmark, system) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Cell {
    pub benchmark: String,
    pub system: String,
    pub map_time_s: f64,
    pub reduce_time_s: f64,
    pub total_time_s: f64,
    pub throughput: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    pub cells: Vec<Fig3Cell>,
}

impl Fig3 {
    pub fn cell(&self, benchmark: &str, system: &str) -> &Fig3Cell {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.system == system)
            .unwrap_or_else(|| panic!("no cell {benchmark}/{system}"))
    }

    /// Throughput gain of SMapReduce over `baseline` on `benchmark`
    /// (e.g. `1.4` = +140 %).
    pub fn gain_over(&self, benchmark: &str, baseline: &str) -> f64 {
        self.cell(benchmark, "SMapReduce").throughput / self.cell(benchmark, baseline).throughput
            - 1.0
    }
}

/// Run all thirteen benchmarks under the three systems.
pub fn run(scale: Scale) -> Fig3 {
    let cfg = EngineConfig::paper_default();
    let mut cells = Vec::new();
    for bench in Puma::ALL {
        let job = bench.job(
            0,
            scale.input(bench.default_input_mb()),
            30,
            Default::default(),
        );
        let rows = run_comparison(&cfg, &[job], scale.trials()).expect("fig3 run");
        for r in rows {
            cells.push(Fig3Cell {
                benchmark: bench.name().to_string(),
                system: r.system,
                map_time_s: r.map_time_s,
                reduce_time_s: r.reduce_time_s,
                total_time_s: r.total_time_s,
                throughput: r.throughput,
            });
        }
    }
    Fig3 { cells }
}

/// Plain-text rendering with the headline comparisons.
pub fn render(f: &Fig3) -> String {
    let mut out =
        String::from("Figure 3 — Execution time of each benchmark (map + reduce seconds)\n\n");
    let headers = [
        "benchmark",
        "system",
        "map(s)",
        "reduce(s)",
        "total(s)",
        "thpt(MB/s)",
    ];
    let rows: Vec<Vec<String>> = f
        .cells
        .iter()
        .map(|c| {
            vec![
                c.benchmark.clone(),
                c.system.clone(),
                table::secs(c.map_time_s),
                table::secs(c.reduce_time_s),
                table::secs(c.total_time_s),
                format!("{:.1}", c.throughput),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    out.push_str("\nHeadlines (§V-A):\n");
    out.push_str(&format!(
        "  HistogramRatings throughput vs HadoopV1: {}   vs YARN: {}\n",
        table::pct_delta(
            f.cell("HistogramRatings", "SMapReduce").throughput,
            f.cell("HistogramRatings", "HadoopV1").throughput
        ),
        table::pct_delta(
            f.cell("HistogramRatings", "SMapReduce").throughput,
            f.cell("HistogramRatings", "YARN").throughput
        ),
    ));
    out.push_str(&format!(
        "  Terasort total time vs HadoopV1: {} (paper: slight slowdown, negligible)\n",
        table::pct_delta(
            f.cell("Terasort", "SMapReduce").total_time_s,
            f.cell("Terasort", "HadoopV1").total_time_s
        ),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full 13-benchmark run is exercised (at Quick scale) by the
    // integration tests; here we validate a focused subset cheaply.
    #[test]
    fn histogramratings_ordering_holds_at_quick_scale() {
        let cfg = EngineConfig::paper_default();
        let bench = Puma::HistogramRatings;
        let job = bench.job(
            0,
            Scale::Quick.input(bench.default_input_mb()),
            30,
            Default::default(),
        );
        let rows = run_comparison(&cfg, &[job], 1).unwrap();
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.system == name)
                .expect("system present")
                .throughput
        };
        assert!(
            by("SMapReduce") > by("YARN") && by("YARN") > by("HadoopV1"),
            "SMR {} YARN {} V1 {}",
            by("SMapReduce"),
            by("YARN"),
            by("HadoopV1")
        );
    }

    #[test]
    fn cell_lookup_and_gain() {
        let f = Fig3 {
            cells: vec![
                Fig3Cell {
                    benchmark: "B".into(),
                    system: "HadoopV1".into(),
                    map_time_s: 10.0,
                    reduce_time_s: 1.0,
                    total_time_s: 11.0,
                    throughput: 100.0,
                },
                Fig3Cell {
                    benchmark: "B".into(),
                    system: "SMapReduce".into(),
                    map_time_s: 5.0,
                    reduce_time_s: 1.0,
                    total_time_s: 6.0,
                    throughput: 240.0,
                },
            ],
        };
        assert!((f.gain_over("B", "HadoopV1") - 1.4).abs() < 1e-12);
        assert_eq!(f.cell("B", "HadoopV1").total_time_s, 11.0);
    }

    #[test]
    #[should_panic(expected = "no cell")]
    fn missing_cell_panics() {
        let f = Fig3 { cells: vec![] };
        let _ = f.cell("X", "Y");
    }
}

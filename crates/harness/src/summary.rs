//! Cross-figure summary: the paper's headline claims checked in one place.

use crate::fig3::Fig3;
use serde::{Deserialize, Serialize};

/// One headline claim and its measured value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Claim {
    pub id: String,
    pub paper: String,
    pub measured: String,
    pub holds: bool,
}

/// Evaluate the §V-A claims against a Fig. 3 dataset.
pub fn headline_claims(fig3: &Fig3) -> Vec<Claim> {
    let mut claims = Vec::new();

    let hr_v1 = fig3.gain_over("HistogramRatings", "HadoopV1");
    claims.push(Claim {
        id: "HistogramRatings vs HadoopV1".into(),
        paper: "+140% throughput".into(),
        measured: format!("{:+.0}%", hr_v1 * 100.0),
        holds: hr_v1 > 0.3, // substantial win on the headline benchmark
    });

    let hr_yarn = fig3.gain_over("HistogramRatings", "YARN");
    claims.push(Claim {
        id: "HistogramRatings vs YARN".into(),
        paper: "+72% throughput".into(),
        measured: format!("{:+.0}%", hr_yarn * 100.0),
        holds: hr_yarn > 0.1,
    });

    let ts = fig3.gain_over("Terasort", "HadoopV1");
    claims.push(Claim {
        id: "Terasort exception".into(),
        paper: "SMapReduce slightly slower (negligible overhead)".into(),
        measured: format!("{:+.1}% throughput", ts * 100.0),
        holds: ts.abs() < 0.05, // within ±5%: the overhead is negligible
    });

    // SMapReduce wins or ties (within 3%) on every non-sort benchmark
    let mut losses = Vec::new();
    for c in fig3.cells.iter().filter(|c| c.system == "HadoopV1") {
        let gain = fig3.gain_over(&c.benchmark, "HadoopV1");
        if gain < -0.03 && c.benchmark != "Terasort" && c.benchmark != "RankedInvertedIndex" {
            losses.push(format!("{} ({:+.0}%)", c.benchmark, gain * 100.0));
        }
    }
    claims.push(Claim {
        id: "SMapReduce >= HadoopV1 on non-sort benchmarks".into(),
        paper: "shorter times in almost all benchmarks".into(),
        measured: if losses.is_empty() {
            "no losses".into()
        } else {
            format!("losses: {}", losses.join(", "))
        },
        holds: losses.is_empty(),
    });

    // the biggest gains are on map-heavy jobs
    let map_heavy_min = [
        "Grep",
        "HistogramMovies",
        "HistogramRatings",
        "Classification",
    ]
    .iter()
    .map(|b| fig3.gain_over(b, "HadoopV1"))
    .fold(f64::INFINITY, f64::min);
    let reduce_heavy_max = ["Terasort", "RankedInvertedIndex", "SelfJoin"]
        .iter()
        .map(|b| fig3.gain_over(b, "HadoopV1"))
        .fold(f64::NEG_INFINITY, f64::max);
    claims.push(Claim {
        id: "map-heavy jobs gain most".into(),
        paper: "map-heavy jobs have higher performance increase".into(),
        measured: format!(
            "min map-heavy gain {:+.0}% > max sort-like gain {:+.0}%",
            map_heavy_min * 100.0,
            reduce_heavy_max * 100.0
        ),
        holds: map_heavy_min > reduce_heavy_max,
    });

    claims
}

/// Plain-text rendering.
pub fn render(claims: &[Claim]) -> String {
    let mut out = String::from("Headline claims (paper vs measured)\n\n");
    for c in claims {
        out.push_str(&format!(
            "[{}] {}\n    paper:    {}\n    measured: {}\n",
            if c.holds { "HOLDS" } else { " MISS" },
            c.id,
            c.paper,
            c.measured
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig3::Fig3Cell;

    fn cell(benchmark: &str, system: &str, thpt: f64) -> Fig3Cell {
        Fig3Cell {
            benchmark: benchmark.into(),
            system: system.into(),
            map_time_s: 1.0,
            reduce_time_s: 1.0,
            total_time_s: 2.0,
            throughput: thpt,
        }
    }

    fn synthetic_fig3() -> Fig3 {
        let mut cells = Vec::new();
        let names = [
            ("HistogramRatings", 100.0, 150.0, 240.0),
            ("Terasort", 100.0, 95.0, 99.0),
            ("Grep", 100.0, 130.0, 180.0),
            ("HistogramMovies", 100.0, 130.0, 185.0),
            ("Classification", 100.0, 130.0, 182.0),
            ("RankedInvertedIndex", 100.0, 95.0, 99.5),
            ("SelfJoin", 100.0, 105.0, 107.0),
        ];
        for (b, v1, yarn, smr) in names {
            cells.push(cell(b, "HadoopV1", v1));
            cells.push(cell(b, "YARN", yarn));
            cells.push(cell(b, "SMapReduce", smr));
        }
        Fig3 { cells }
    }

    #[test]
    fn all_claims_hold_on_paper_like_data() {
        let claims = headline_claims(&synthetic_fig3());
        assert_eq!(claims.len(), 5);
        for c in &claims {
            assert!(c.holds, "claim should hold: {} ({})", c.id, c.measured);
        }
    }

    #[test]
    fn terasort_blowup_fails_claim() {
        let mut f = synthetic_fig3();
        for c in &mut f.cells {
            if c.benchmark == "Terasort" && c.system == "SMapReduce" {
                c.throughput = 60.0; // -40%: no longer "negligible"
            }
        }
        let claims = headline_claims(&f);
        let ts = claims
            .iter()
            .find(|c| c.id == "Terasort exception")
            .unwrap();
        assert!(!ts.holds);
    }

    #[test]
    fn render_flags_misses() {
        let claims = vec![Claim {
            id: "x".into(),
            paper: "p".into(),
            measured: "m".into(),
            holds: false,
        }];
        assert!(render(&claims).contains(" MISS"));
    }
}

//! Figure 1 — the thrashing phenomenon.
//!
//! "In the Terasort, TermVector, and Grep benchmarks, the curves of the
//! throughput of the map slots versus the number of map slots in each node
//! begins to fall when the number of map slots reaches the thrashing
//! point." Static HadoopV1 runs with the map-slot count swept; the plotted
//! throughput is map-phase throughput (input MB / map time).
//!
//! Expected shape: each curve rises, flattens and falls; Grep (map-heavy)
//! peaks at a higher slot count than TermVector, which peaks above
//! Terasort (reduce-heavy).

use crate::runner::{run_averaged, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use workloads::Puma;

/// One benchmark's throughput curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThrashCurve {
    pub benchmark: String,
    /// `(map slots per node, map-phase throughput MB/s)`.
    pub points: Vec<(usize, f64)>,
    /// Slot count with the maximum observed throughput.
    pub peak_slots: usize,
}

/// The figure's data: one curve per benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    pub curves: Vec<ThrashCurve>,
}

/// The benchmarks the paper plots.
pub const BENCHMARKS: [Puma; 3] = [Puma::Terasort, Puma::TermVector, Puma::Grep];

/// Slot counts swept.
pub fn slot_sweep() -> Vec<usize> {
    (1..=10).collect()
}

/// Run the experiment.
pub fn run(scale: Scale) -> Fig1 {
    let curves = BENCHMARKS
        .iter()
        .map(|&bench| {
            let mut points = Vec::new();
            for slots in slot_sweep() {
                let mut cfg = EngineConfig::paper_default();
                cfg.init_map_slots = slots;
                let job = bench.job(
                    0,
                    scale.input(bench.default_input_mb()),
                    30,
                    Default::default(),
                );
                let avg = run_averaged(&cfg, &[job], &System::HadoopV1, scale.trials())
                    .expect("fig1 run");
                let throughput = avg.sample.jobs[0].input_mb / avg.map_time_s;
                points.push((slots, throughput));
            }
            let peak_slots = points
                .iter()
                .copied()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                .expect("non-empty sweep")
                .0;
            ThrashCurve {
                benchmark: bench.name().to_string(),
                points,
                peak_slots,
            }
        })
        .collect();
    Fig1 { curves }
}

/// Figure as gnuplot series.
pub fn to_gnuplot(f: &Fig1) -> crate::output::GnuplotFigure {
    crate::output::GnuplotFigure {
        title: "Fig. 1 — map throughput vs map slots per node".into(),
        xlabel: "map slots per node".into(),
        ylabel: "map throughput (MB/s)".into(),
        series: f
            .curves
            .iter()
            .map(|c| {
                (
                    c.benchmark.clone(),
                    c.points.iter().map(|&(x, y)| (x as f64, y)).collect(),
                )
            })
            .collect(),
    }
}

/// Plain-text rendering.
pub fn render(f: &Fig1) -> String {
    let mut out = String::from(
        "Figure 1 — Thrashing: map throughput (MB/s) vs map slots per node (HadoopV1 static)\n\n",
    );
    let mut headers = vec!["slots".to_string()];
    headers.extend(f.curves.iter().map(|c| c.benchmark.clone()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let n = f.curves[0].points.len();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let mut row = vec![f.curves[0].points[i].0.to_string()];
            row.extend(f.curves.iter().map(|c| format!("{:.1}", c.points[i].1)));
            row
        })
        .collect();
    out.push_str(&table::render_table(&headers_ref, &rows));
    out.push('\n');
    for c in &f.curves {
        out.push_str(&format!(
            "{}: thrashing point at ~{} map slots/node\n",
            c.benchmark, c.peak_slots
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_rise_then_fall_with_ordered_knees() {
        // tiny inputs: the *shape* is what matters
        let f = run(Scale::Quick);
        assert_eq!(f.curves.len(), 3);
        let knee = |name: &str| {
            f.curves
                .iter()
                .find(|c| c.benchmark == name)
                .expect("curve present")
                .peak_slots
        };
        let (ts, tv, gr) = (knee("Terasort"), knee("TermVector"), knee("Grep"));
        assert!(ts < gr, "Terasort must thrash before Grep: {ts} vs {gr}");
        assert!(
            tv <= gr && tv >= ts,
            "TermVector in between: {ts} {tv} {gr}"
        );
        // every curve declines after its peak
        for c in &f.curves {
            let peak_thpt = c
                .points
                .iter()
                .find(|p| p.0 == c.peak_slots)
                .expect("peak present")
                .1;
            let last = c.points.last().expect("sweep non-empty").1;
            if c.peak_slots < c.points.last().unwrap().0 {
                assert!(
                    last < peak_thpt,
                    "{}: throughput must fall past the knee",
                    c.benchmark
                );
            }
        }
    }

    #[test]
    fn render_contains_all_benchmarks() {
        let f = Fig1 {
            curves: vec![ThrashCurve {
                benchmark: "X".into(),
                points: vec![(1, 10.0), (2, 20.0)],
                peak_slots: 2,
            }],
        };
        let s = render(&f);
        assert!(s.contains('X'));
        assert!(s.contains("thrashing point at ~2"));
    }
}

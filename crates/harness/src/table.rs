//! Plain-text rendering of figure data: aligned tables and series blocks.

/// Render an aligned table. `headers.len()` must equal each row's length.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}", w = w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push_str(&fmt_row(
        widths.iter().map(|_| "-").collect::<Vec<_>>(),
        &widths,
    ));
    // note: the dash row renders one dash per column, right-aligned; widen
    let dash_line: String = widths
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let sep = if i > 0 { "  " } else { "" };
            format!("{sep}{}", "-".repeat(*w))
        })
        .collect::<Vec<_>>()
        .join("");
    // replace the placeholder dash row with full-width dashes
    let mut lines: Vec<&str> = out.lines().collect();
    let header_line = lines.remove(0).to_string();
    let mut rebuilt = String::new();
    rebuilt.push_str(&header_line);
    rebuilt.push('\n');
    rebuilt.push_str(&dash_line);
    rebuilt.push('\n');
    for row in rows {
        rebuilt.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
    }
    rebuilt
}

/// Format seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a ratio as a percentage delta ("+140%", "-3%").
pub fn pct_delta(new: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".into();
    }
    let d = (new / baseline - 1.0) * 100.0;
    format!("{d:+.0}%")
}

/// Render a `(x, y)` series as two aligned columns.
pub fn render_series(title: &str, xlabel: &str, ylabel: &str, points: &[(f64, f64)]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|&(x, y)| vec![format!("{x:.1}"), format!("{y:.2}")])
        .collect();
    format!("# {title}\n{}", render_table(&[xlabel, ylabel], &rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].chars().all(|c| c == '-' || c == ' '));
        // right-aligned: "a" padded to the width of "longer"
        assert!(lines[2].trim_start().starts_with('a'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn pct_delta_formats() {
        assert_eq!(pct_delta(24.0, 10.0), "+140%");
        assert_eq!(pct_delta(9.0, 10.0), "-10%");
        assert_eq!(pct_delta(10.0, 0.0), "n/a");
    }

    #[test]
    fn series_renders() {
        let s = render_series("t", "x", "y", &[(1.0, 2.0), (3.0, 4.5)]);
        assert!(s.starts_with("# t\n"));
        assert!(s.contains("4.50"));
    }
}

//! Figure 7 — map time with and without thrashing detection, and with and
//! without the slow-start policy (two benchmarks).
//!
//! Expected shape: without thrashing detection the slot manager climbs past
//! the knee and keeps going — map time becomes *much worse* than even
//! HadoopV1. Without slow start the manager acts on the unreliable early
//! statistics; the outcome is erratic (sometimes better, usually worse than
//! full SMapReduce). Full SMapReduce is the best configuration.

use crate::runner::{run_averaged, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use smapreduce::SmrConfig;
use workloads::Puma;

/// One (benchmark, variant) map time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Cell {
    pub benchmark: String,
    pub variant: String,
    pub map_time_s: f64,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    pub cells: Vec<Fig7Cell>,
}

impl Fig7 {
    pub fn map_time(&self, benchmark: &str, variant: &str) -> f64 {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.variant == variant)
            .unwrap_or_else(|| panic!("no cell {benchmark}/{variant}"))
            .map_time_s
    }
}

/// The two benchmarks exercised. Both are medium (WordCount-class) jobs:
/// their shuffle has ample headroom, so the balance factor alone never
/// stops the climb — exactly the regime where the paper observes that
/// "without detecting thrashing, the map time of SMapReduce is much longer
/// than that of HadoopV1". (On reduce-heavy jobs the balance check itself
/// halts over-allocation, masking the ablation.)
pub const BENCHMARKS: [Puma; 2] = [Puma::WordCount, Puma::KMeans];

/// The compared variants.
pub fn variants() -> Vec<(String, System)> {
    vec![
        ("HadoopV1".into(), System::HadoopV1),
        ("YARN".into(), System::Yarn),
        ("SMapReduce".into(), System::SMapReduce),
        (
            "SMR-noThrashDetect".into(),
            System::SMapReduceWith(SmrConfig::without_thrashing_detection()),
        ),
        (
            "SMR-noSlowStart".into(),
            System::SMapReduceWith(SmrConfig::without_slow_start()),
        ),
    ]
}

/// Run the ablation grid.
pub fn run(scale: Scale) -> Fig7 {
    let cfg = EngineConfig::paper_default();
    let mut cells = Vec::new();
    for bench in BENCHMARKS {
        for (label, sys) in variants() {
            let job = bench.job(
                0,
                scale.input(bench.default_input_mb()),
                30,
                Default::default(),
            );
            let avg = run_averaged(&cfg, &[job], &sys, scale.trials()).expect("fig7 run");
            cells.push(Fig7Cell {
                benchmark: bench.name().to_string(),
                variant: label,
                map_time_s: avg.map_time_s,
            });
        }
    }
    Fig7 { cells }
}

/// Plain-text rendering.
pub fn render(f: &Fig7) -> String {
    let mut out =
        String::from("Figure 7 — Map time (s) with/without thrashing detection and slow start\n\n");
    let headers = ["benchmark", "variant", "map(s)"];
    let rows: Vec<Vec<String>> = f
        .cells
        .iter()
        .map(|c| {
            vec![
                c.benchmark.clone(),
                c.variant.clone(),
                table::secs(c.map_time_s),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    for bench in BENCHMARKS {
        let b = bench.name();
        out.push_str(&format!(
            "\n{b}: noThrashDetect is {} vs full SMapReduce; noSlowStart is {}\n",
            table::pct_delta(
                f.map_time(b, "SMR-noThrashDetect"),
                f.map_time(b, "SMapReduce")
            ),
            table::pct_delta(
                f.map_time(b, "SMR-noSlowStart"),
                f.map_time(b, "SMapReduce")
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_hurt() {
        // a single benchmark, but with enough input that the unchecked
        // climb has time to reach (and suffer at) the slot cap before the
        // last map wave is assigned
        let cfg = EngineConfig::paper_default();
        let bench = Puma::WordCount;
        let job = || bench.job(0, 60.0 * 1024.0, 30, Default::default());
        let full = run_averaged(&cfg, &[job()], &System::SMapReduce, 1)
            .unwrap()
            .map_time_s;
        let v1 = run_averaged(&cfg, &[job()], &System::HadoopV1, 1)
            .unwrap()
            .map_time_s;
        let no_thrash = run_averaged(
            &cfg,
            &[job()],
            &System::SMapReduceWith(SmrConfig::without_thrashing_detection()),
            1,
        )
        .unwrap()
        .map_time_s;
        assert!(
            no_thrash > full * 1.15,
            "removing thrashing detection must hurt: {no_thrash} vs full {full}"
        );
        assert!(
            no_thrash > v1,
            "paper: without detection SMapReduce is slower than even HadoopV1              ({no_thrash} vs {v1})"
        );
    }

    #[test]
    fn variant_list_is_complete() {
        let v = variants();
        assert_eq!(v.len(), 5);
        assert!(v.iter().any(|(l, _)| l == "SMR-noThrashDetect"));
        assert!(v.iter().any(|(l, _)| l == "SMR-noSlowStart"));
    }

    #[test]
    fn lookup_panics_on_missing() {
        let f = Fig7 { cells: vec![] };
        assert!(std::panic::catch_unwind(|| f.map_time("a", "b")).is_err());
    }
}

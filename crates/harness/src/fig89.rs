//! Figures 8 and 9 — multiple concurrent jobs (§V-F): four identical jobs
//! submitted 5 s apart; mean execution time and last-finish time under
//! HadoopV1 (FIFO), YARN (capacity) and SMapReduce (FIFO + slot manager).
//!
//! Fig. 8 runs Grep, Fig. 9 InvertedIndex. Expected shape: SMapReduce has
//! both the shortest mean and the shortest makespan; in the paper's Grep
//! workload SMapReduce's times are ~60 % of HadoopV1's and ~70 % of
//! YARN's.

use crate::runner::{run_averaged, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use workloads::Puma;

/// One system's multi-job metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiJobCell {
    pub system: String,
    pub mean_execution_s: f64,
    pub last_finish_s: f64,
}

/// Data for one of the two figures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigMultiJob {
    pub benchmark: String,
    pub cells: Vec<MultiJobCell>,
}

impl FigMultiJob {
    pub fn cell(&self, system: &str) -> &MultiJobCell {
        self.cells
            .iter()
            .find(|c| c.system == system)
            .unwrap_or_else(|| panic!("no cell {system}"))
    }
}

/// Run the §V-F workload for `bench`.
pub fn run(bench: Puma, scale: Scale) -> FigMultiJob {
    let cfg = EngineConfig::paper_default();
    // four jobs share the cluster: size each so the whole workload stays
    // tractable while still overlapping heavily
    let per_job_mb = scale.input(bench.default_input_mb() / 2.0);
    let jobs = workloads::paper_multi_job(bench, per_job_mb, 30);
    let cells = System::all()
        .iter()
        .map(|sys| {
            let avg = run_averaged(&cfg, &jobs, sys, scale.trials()).expect("multi-job run");
            MultiJobCell {
                system: sys.label().to_string(),
                mean_execution_s: avg.mean_execution_s,
                last_finish_s: avg.makespan_s,
            }
        })
        .collect();
    FigMultiJob {
        benchmark: bench.name().to_string(),
        cells,
    }
}

/// Figure 8: Grep.
pub fn run_fig8(scale: Scale) -> FigMultiJob {
    run(Puma::Grep, scale)
}

/// Figure 9: InvertedIndex.
pub fn run_fig9(scale: Scale) -> FigMultiJob {
    run(Puma::InvertedIndex, scale)
}

/// Plain-text rendering.
pub fn render(f: &FigMultiJob, figure_no: u8) -> String {
    let mut out = format!(
        "Figure {figure_no} — 4 concurrent {} jobs (5 s stagger): mean and last-finish time\n\n",
        f.benchmark
    );
    let headers = ["system", "mean(s)", "last-finish(s)"];
    let rows: Vec<Vec<String>> = f
        .cells
        .iter()
        .map(|c| {
            vec![
                c.system.clone(),
                table::secs(c.mean_execution_s),
                table::secs(c.last_finish_s),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    let smr = f.cell("SMapReduce");
    let v1 = f.cell("HadoopV1");
    let yarn = f.cell("YARN");
    out.push_str(&format!(
        "\nSMapReduce mean = {:.0}% of HadoopV1, {:.0}% of YARN (paper Grep: ~60%, ~70%)\n",
        100.0 * smr.mean_execution_s / v1.mean_execution_s,
        100.0 * smr.mean_execution_s / yarn.mean_execution_s,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smapreduce_wins_multi_job_grep() {
        let f = run_fig8(Scale::Quick);
        let smr = f.cell("SMapReduce");
        let v1 = f.cell("HadoopV1");
        assert!(
            smr.mean_execution_s < v1.mean_execution_s,
            "SMR mean {} vs V1 {}",
            smr.mean_execution_s,
            v1.mean_execution_s
        );
        assert!(
            smr.last_finish_s < v1.last_finish_s,
            "SMR makespan {} vs V1 {}",
            smr.last_finish_s,
            v1.last_finish_s
        );
    }

    #[test]
    fn render_shows_percentages() {
        let f = FigMultiJob {
            benchmark: "Grep".into(),
            cells: vec![
                MultiJobCell {
                    system: "HadoopV1".into(),
                    mean_execution_s: 100.0,
                    last_finish_s: 200.0,
                },
                MultiJobCell {
                    system: "YARN".into(),
                    mean_execution_s: 90.0,
                    last_finish_s: 180.0,
                },
                MultiJobCell {
                    system: "SMapReduce".into(),
                    mean_execution_s: 60.0,
                    last_finish_s: 120.0,
                },
            ],
        };
        let s = render(&f, 8);
        assert!(s.contains("60% of HadoopV1"));
    }

    #[test]
    #[should_panic(expected = "no cell")]
    fn missing_system_panics() {
        let f = FigMultiJob {
            benchmark: "x".into(),
            cells: vec![],
        };
        let _ = f.cell("YARN");
    }
}

//! `reproduce capsule-bench` — size and speed of the binary capsule
//! format against JSON, measured on the ext-faults representative stream
//! (the heaviest capsule producer: crashes, blacklists, and re-replication
//! state on top of the usual task maps). Written to `BENCH_capsule.json`.
//!
//! Every binary capsule is decoded back and byte-compared against its
//! JSON round-trip, so the size ratio is only reported alongside proof
//! the compact encoding is lossless.

use crate::dashboard;
use crate::runner;
use crate::scale::Scale;
use checkpoint::{CapsuleFormat, SimSnapshot};
use serde::{Deserialize, Serialize};
use simgrid::time::SimDuration;
use std::time::Instant;

/// The benchmark's measurements (the `BENCH_capsule.json` payload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapsuleBench {
    /// Target whose representative run produced the stream.
    pub target: String,
    /// Capsules in the measured stream.
    pub capsules: usize,
    /// Total stream size encoded as JSON (v2 envelope).
    pub json_bytes: u64,
    /// Total stream size encoded as binary (v2 envelope).
    pub binary_bytes: u64,
    /// `json_bytes / binary_bytes` — the acceptance gate asserts ≥ 5.
    pub size_ratio: f64,
    /// Wall milliseconds to encode the whole stream, per format.
    pub json_encode_ms: f64,
    pub binary_encode_ms: f64,
    /// Wall milliseconds to decode the whole stream back, per format.
    pub json_decode_ms: f64,
    pub binary_decode_ms: f64,
    /// JSON time / binary time (> 1 means binary is faster).
    pub encode_speedup: f64,
    pub decode_speedup: f64,
    /// Every binary capsule decoded back to a state whose JSON encoding
    /// is byte-identical to the original's (must be true).
    pub round_trip_exact: bool,
}

/// Encode repetitions per capsule, so quick streams still spend
/// measurable wall time in each codec.
const REPS: u32 = 5;

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

fn run_target(target: &str, scale: Scale) -> CapsuleBench {
    let (mut cfg, jobs, system, _) =
        dashboard::representative(target, scale).expect("representative run");
    cfg.record_events = false;
    let seed = cfg.seed;
    let (_, states) =
        runner::run_once_with_snapshots(&cfg, jobs, &system, seed, SimDuration::from_secs(30))
            .expect("representative run completes");
    let snaps: Vec<SimSnapshot> = states.into_iter().map(SimSnapshot::new).collect();

    let encode_all = |format: CapsuleFormat| -> (Vec<Vec<u8>>, f64) {
        timed(|| {
            let mut encoded = Vec::new();
            for _ in 0..REPS {
                encoded = snaps
                    .iter()
                    .map(|snap| checkpoint::to_bytes(snap, format))
                    .collect();
            }
            encoded
        })
    };
    let decode_all = |encoded: &[Vec<u8>]| -> (Vec<SimSnapshot>, f64) {
        timed(|| {
            let mut decoded = Vec::new();
            for _ in 0..REPS {
                decoded = encoded
                    .iter()
                    .map(|bytes| {
                        checkpoint::from_bytes(std::path::Path::new("bench"), bytes)
                            .expect("own encoding decodes")
                    })
                    .collect();
            }
            decoded
        })
    };

    let (json, json_encode_ms) = encode_all(CapsuleFormat::Json);
    let (binary, binary_encode_ms) = encode_all(CapsuleFormat::Binary);
    let (_, json_decode_ms) = decode_all(&json);
    let (from_binary, binary_decode_ms) = decode_all(&binary);

    // lossless check: a binary round-trip re-encoded as JSON must equal
    // the state's direct JSON encoding byte for byte
    let round_trip_exact = from_binary
        .iter()
        .zip(json.iter())
        .all(|(snap, json_bytes)| checkpoint::to_bytes(snap, CapsuleFormat::Json) == *json_bytes);

    let json_bytes: u64 = json.iter().map(|b| b.len() as u64).sum();
    let binary_bytes: u64 = binary.iter().map(|b| b.len() as u64).sum();
    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    CapsuleBench {
        target: target.to_string(),
        capsules: snaps.len(),
        json_bytes,
        binary_bytes,
        size_ratio: ratio(json_bytes as f64, binary_bytes as f64),
        json_encode_ms,
        binary_encode_ms,
        json_decode_ms,
        binary_decode_ms,
        encode_speedup: ratio(json_encode_ms, binary_encode_ms),
        decode_speedup: ratio(json_decode_ms, binary_decode_ms),
        round_trip_exact,
    }
}

/// Run the benchmark on the ext-faults representative stream.
pub fn run(scale: Scale) -> CapsuleBench {
    run_target("ext-faults", scale)
}

/// Plain-text rendering.
pub fn render(b: &CapsuleBench) -> String {
    format!(
        "capsule codec on the {} stream ({} capsules):\n\
         size: JSON {} B, binary {} B — {:.1}x smaller\n\
         encode: JSON {:.2}ms, binary {:.2}ms ({:.1}x); \
         decode: JSON {:.2}ms, binary {:.2}ms ({:.1}x)\n\
         binary round-trip lossless: {}\n",
        b.target,
        b.capsules,
        b.json_bytes,
        b.binary_bytes,
        b.size_ratio,
        b.json_encode_ms,
        b.binary_encode_ms,
        b.encode_speedup,
        b.json_decode_ms,
        b.binary_decode_ms,
        b.decode_speedup,
        b.round_trip_exact,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ext_faults_stream_hits_the_size_gate() {
        let b = run(Scale::Quick);
        assert!(b.capsules >= 2, "{} capsules", b.capsules);
        assert!(b.round_trip_exact, "binary round-trip lost information");
        assert!(
            b.size_ratio >= 5.0,
            "binary capsules only {:.2}x smaller than JSON ({} vs {} bytes)",
            b.size_ratio,
            b.binary_bytes,
            b.json_bytes
        );
        // wall times are informational (never gated — CI machines vary)
        assert!(b.json_encode_ms > 0.0 && b.binary_encode_ms > 0.0);
    }

    #[test]
    fn render_reports_the_headline_numbers() {
        let b = CapsuleBench {
            target: "ext-faults".into(),
            capsules: 14,
            json_bytes: 1_936_242,
            binary_bytes: 276_486,
            size_ratio: 7.0,
            json_encode_ms: 40.0,
            binary_encode_ms: 20.0,
            json_decode_ms: 60.0,
            binary_decode_ms: 30.0,
            encode_speedup: 2.0,
            decode_speedup: 2.0,
            round_trip_exact: true,
        };
        let s = render(&b);
        assert!(s.contains("7.0x smaller"));
        assert!(s.contains("14 capsules"));
        assert!(s.contains("lossless: true"));
    }
}

//! Running one workload under each of the three systems, with seed
//! averaging.
//!
//! The paper averages two physical trials; we average `trials` seeded
//! simulation runs (default 3). Sweeps fan out across OS threads with
//! `std::thread::scope` — each run is independent and deterministic, so the
//! parallelism changes wall-clock time only.
//!
//! Every run is passed through the [`mapreduce::auditor`] before its
//! report is handed back: a violated invariant turns the run into a
//! [`SimError::AuditFailed`], so no figure can silently be built from a
//! report whose counters and events disagree. Audited runs also merge
//! their cluster counters into a process-wide ledger
//! ([`counters_snapshot`]) that `reproduce` prints per target.

use mapreduce::auditor::{audit, AuditSetup};
use mapreduce::policy::{SlotPolicy, StaticSlotPolicy};
use mapreduce::{CounterLedger, Engine, EngineConfig, JobSpec, RunReport};
use serde::{Deserialize, Serialize};
use simgrid::error::SimError;
use simgrid::time::SteppingMode;
use smapreduce::{HeteroSlotManagerPolicy, SlotManagerPolicy, SmrConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use yarn::CapacityPolicy;

/// Process-wide telemetry sink every [`run_once`] threads into the engine.
/// Disabled (and allocation-free) unless [`install_telemetry`] was called —
/// the `reproduce --trace` path.
static TELEMETRY: OnceLock<telemetry::Telemetry> = OnceLock::new();

/// Engine steps simulated by this process across all runs and threads
/// (perf-summary input).
static TOTAL_STEPS: AtomicU64 = AtomicU64::new(0);

/// Simulated milliseconds covered by those steps (perf-summary input:
/// steps per simulated second shows what adaptive stepping saves).
static TOTAL_SIM_MS: AtomicU64 = AtomicU64::new(0);

/// Process-wide stepping-mode override (the `reproduce --engine` flag and
/// the cross-validation suite). `None` keeps each config's own mode.
static ENGINE_MODE: OnceLock<SteppingMode> = OnceLock::new();

/// Cluster counters merged from every audited run in this process, across
/// all threads. `reproduce` snapshots this before and after each target to
/// print the target's counter delta.
static RUN_COUNTERS: Mutex<CounterLedger> = Mutex::new(CounterLedger::new());

/// Install the process-wide telemetry sink used by all subsequent runs.
/// Returns `false` if a sink was already installed (the first one wins).
pub fn install_telemetry(telem: telemetry::Telemetry) -> bool {
    TELEMETRY.set(telem).is_ok()
}

/// The installed sink, or a disabled handle when none was installed.
pub fn active_telemetry() -> telemetry::Telemetry {
    TELEMETRY.get().cloned().unwrap_or_default()
}

/// Force every subsequent [`run_once`] in this process onto one stepping
/// mode, regardless of what each config says. Returns `false` if a mode
/// was already pinned (the first caller wins, like [`install_telemetry`]).
pub fn set_engine_mode(mode: SteppingMode) -> bool {
    ENGINE_MODE.set(mode).is_ok()
}

/// The pinned stepping mode, if any.
pub fn engine_mode() -> Option<SteppingMode> {
    ENGINE_MODE.get().copied()
}

/// Total engine steps simulated by this process so far.
pub fn total_steps() -> u64 {
    TOTAL_STEPS.load(Ordering::Relaxed)
}

/// Total simulated time covered by this process so far, in seconds.
pub fn total_sim_seconds() -> f64 {
    TOTAL_SIM_MS.load(Ordering::Relaxed) as f64 / 1000.0
}

/// Cluster counters accumulated by every [`run_once`] so far.
pub fn counters_snapshot() -> CounterLedger {
    RUN_COUNTERS.lock().expect("counters lock").clone()
}

/// Which system to run a workload under.
#[derive(Debug, Clone)]
pub enum System {
    /// Static slots (HadoopV1).
    HadoopV1,
    /// Container budget with map priority (YARN).
    Yarn,
    /// The paper's slot manager, default configuration.
    SMapReduce,
    /// The slot manager under a custom configuration (ablations).
    SMapReduceWith(SmrConfig),
    /// The §VII heterogeneous extension: capacity-proportional targets.
    SMapReduceHetero,
}

impl System {
    /// The three systems of every comparison figure.
    pub fn all() -> [System; 3] {
        [System::HadoopV1, System::Yarn, System::SMapReduce]
    }

    pub fn label(&self) -> &'static str {
        match self {
            System::HadoopV1 => "HadoopV1",
            System::Yarn => "YARN",
            System::SMapReduce | System::SMapReduceWith(_) => "SMapReduce",
            System::SMapReduceHetero => "SMapReduce-hetero",
        }
    }

    fn make_policy(&self) -> Box<dyn SlotPolicy> {
        match self {
            System::HadoopV1 => Box::new(StaticSlotPolicy),
            System::Yarn => Box::new(CapacityPolicy),
            System::SMapReduce => Box::new(SlotManagerPolicy::paper_default()),
            System::SMapReduceWith(cfg) => Box::new(SlotManagerPolicy::new(cfg.clone())),
            System::SMapReduceHetero => Box::new(HeteroSlotManagerPolicy::paper_default()),
        }
    }
}

/// Seed-averaged timings of one (workload, system) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AveragedRun {
    pub system: String,
    /// Mean per-job map time (s) — averaged across trials, then jobs.
    pub map_time_s: f64,
    /// Mean per-job reduce time (s).
    pub reduce_time_s: f64,
    /// Mean per-job total time (s).
    pub total_time_s: f64,
    /// Mean per-job throughput (MB/s of input).
    pub throughput: f64,
    /// Mean of per-trial mean execution times (multi-job workloads).
    pub mean_execution_s: f64,
    /// Mean of per-trial makespans.
    pub makespan_s: f64,
    /// One representative full report (first trial) for series data.
    pub sample: RunReport,
}

/// Run `jobs` under `system` once with the given seed. The finished report
/// is audited before being returned: a counter/event invariant violation
/// surfaces as [`SimError::AuditFailed`].
pub fn run_once(
    cfg: &EngineConfig,
    jobs: Vec<JobSpec>,
    system: &System,
    seed: u64,
) -> Result<RunReport, SimError> {
    let mut cfg = cfg.clone();
    cfg.seed = seed;
    if let Some(mode) = engine_mode() {
        cfg.tick.mode = mode;
    }
    let setup = AuditSetup::from_config(&cfg);
    let mut policy = system.make_policy();
    let report = Engine::new(cfg).run_with(jobs, policy.as_mut(), &active_telemetry())?;
    TOTAL_STEPS.fetch_add(report.steps, Ordering::Relaxed);
    let sim_ms = report
        .jobs
        .iter()
        .map(|j| j.finished_at.as_millis())
        .max()
        .unwrap_or(0);
    TOTAL_SIM_MS.fetch_add(sim_ms, Ordering::Relaxed);
    let violations = audit(&report, &setup);
    if !violations.is_empty() {
        return Err(SimError::AuditFailed {
            violations: violations.iter().map(|v| v.to_string()).collect(),
        });
    }
    RUN_COUNTERS
        .lock()
        .expect("counters lock")
        .merge(&report.counters);
    Ok(report)
}

/// Derive the seed of trial `trial` from a cell's base seed with a
/// splitmix64-style mixer. The old `base + 1000 * trial` scheme made
/// trial 1 of seed 0 collide with trial 0 of seed 1000 — adjacent sweep
/// cells silently averaged over overlapping seed sets.
pub fn trial_seed(cell_seed: u64, trial: u64) -> u64 {
    let mut z =
        cell_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `jobs` under `system` for `trials` seeds and average the timings.
pub fn run_averaged(
    cfg: &EngineConfig,
    jobs: &[JobSpec],
    system: &System,
    trials: usize,
) -> Result<AveragedRun, SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "run_averaged needs at least one trial".into(),
        ));
    }
    let mut reports = Vec::with_capacity(trials);
    for t in 0..trials {
        let seed = trial_seed(cfg.seed, t as u64);
        reports.push(run_once(cfg, jobs.to_vec(), system, seed)?);
    }
    let njobs = reports[0].jobs.len() as f64;
    let nt = trials as f64;
    let mean_over =
        |f: &dyn Fn(&RunReport) -> f64| -> f64 { reports.iter().map(f).sum::<f64>() / nt };
    let per_job = |f: &dyn Fn(&mapreduce::JobReport) -> f64| -> f64 {
        reports
            .iter()
            .map(|r| r.jobs.iter().map(f).sum::<f64>() / njobs)
            .sum::<f64>()
            / nt
    };
    Ok(AveragedRun {
        system: system.label().to_string(),
        map_time_s: per_job(&|j| j.map_time().as_secs_f64()),
        reduce_time_s: per_job(&|j| j.reduce_time().as_secs_f64()),
        total_time_s: per_job(&|j| j.total_time().as_secs_f64()),
        throughput: per_job(&|j| j.throughput()),
        mean_execution_s: mean_over(&|r| r.mean_execution_time().as_secs_f64()),
        makespan_s: mean_over(&|r| r.makespan().as_secs_f64()),
        sample: reports.swap_remove(0),
    })
}

/// Run the same workload under all three systems (in parallel threads).
pub fn run_comparison(
    cfg: &EngineConfig,
    jobs: &[JobSpec],
    trials: usize,
) -> Result<Vec<AveragedRun>, SimError> {
    let systems = System::all();
    let mut out: Vec<Option<Result<AveragedRun, SimError>>> =
        systems.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = out
            .iter_mut()
            .zip(systems.iter())
            .map(|(slot, system)| {
                let handle = s.spawn(move || {
                    *slot = Some(run_averaged(cfg, jobs, system, trials));
                });
                (system.label(), handle)
            })
            .collect();
        // join explicitly: a panicking worker used to surface later as a
        // baffling "thread filled slot" expect failure — resurface it
        // here with the system that died
        for (label, handle) in handles {
            if let Err(payload) = handle.join() {
                std::panic::panic_any(format!(
                    "{label} worker thread panicked: {}",
                    panic_message(&payload)
                ));
            }
        }
    });
    out.into_iter()
        .map(|r| r.expect("joined thread filled its slot"))
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::time::SimTime;
    use workloads::Puma;

    fn small_cfg() -> EngineConfig {
        EngineConfig::small_test(4, 11)
    }

    fn small_job() -> JobSpec {
        Puma::Grep.job(0, 2048.0, 8, SimTime::ZERO)
    }

    #[test]
    fn run_once_all_systems() {
        let cfg = small_cfg();
        for sys in System::all() {
            let r = run_once(&cfg, vec![small_job()], &sys, 1).expect("completes");
            assert_eq!(r.policy, sys.label());
            assert_eq!(r.jobs.len(), 1);
        }
    }

    #[test]
    fn averaging_is_sane() {
        let cfg = small_cfg();
        let avg = run_averaged(&cfg, &[small_job()], &System::HadoopV1, 2).unwrap();
        assert!(avg.total_time_s > 0.0);
        assert!(
            (avg.map_time_s + avg.reduce_time_s - avg.total_time_s).abs() < 1e-6,
            "map+reduce = total per definition"
        );
        assert!(avg.throughput > 0.0);
    }

    #[test]
    fn comparison_runs_three_systems() {
        let cfg = small_cfg();
        let rows = run_comparison(&cfg, &[small_job()], 1).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].system, "HadoopV1");
        assert_eq!(rows[1].system, "YARN");
        assert_eq!(rows[2].system, "SMapReduce");
    }

    #[test]
    fn ablation_system_uses_custom_config() {
        let cfg = small_cfg();
        let sys = System::SMapReduceWith(SmrConfig::without_slow_start());
        let r = run_once(&cfg, vec![small_job()], &sys, 1).unwrap();
        assert_eq!(r.policy, "SMapReduce");
    }

    #[test]
    fn zero_trials_is_an_error() {
        let cfg = small_cfg();
        let err = run_averaged(&cfg, &[small_job()], &System::HadoopV1, 0);
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn trial_seeds_do_not_collide_across_cells() {
        // the old base + 1000*t scheme collided: (0, t=1) == (1000, t=0)
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1000, 2000, 3000] {
            for t in 0..3u64 {
                assert!(
                    seen.insert(trial_seed(base, t)),
                    "seed collision at base={base} trial={t}"
                );
            }
        }
    }

    #[test]
    fn runs_accumulate_process_counters() {
        let cfg = small_cfg();
        let before = counters_snapshot();
        let r = run_once(&cfg, vec![small_job()], &System::HadoopV1, 3).unwrap();
        let delta = counters_snapshot().delta_from(&before);
        assert!(!r.counters.is_zero());
        // other tests run concurrently, so the delta is at least this run
        assert!(
            delta.get(mapreduce::Counter::TotalLaunchedMaps)
                >= r.counters.get(mapreduce::Counter::TotalLaunchedMaps)
        );
    }

    #[test]
    fn same_seed_same_average() {
        let cfg = small_cfg();
        let a = run_averaged(&cfg, &[small_job()], &System::SMapReduce, 2).unwrap();
        let b = run_averaged(&cfg, &[small_job()], &System::SMapReduce, 2).unwrap();
        assert_eq!(a.total_time_s.to_bits(), b.total_time_s.to_bits());
    }
}

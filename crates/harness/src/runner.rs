//! Running one workload under each of the three systems, with seed
//! averaging.
//!
//! The paper averages two physical trials; we average `trials` seeded
//! simulation runs (default 3). Sweeps fan out over the bounded
//! [`sweepengine::BatchedSweep`] worker pool — `available_parallelism`
//! workers claiming cells from a shared cursor, each recycling engine
//! scratch through its own [`EngineArena`] — so wall time and memory no
//! longer scale with grid size × threads. Each cell is independent and
//! deterministic, so the parallelism changes wall-clock time only.
//!
//! Every run is passed through the [`mapreduce::auditor`] before its
//! report is handed back: a violated invariant turns the run into a
//! [`SimError::AuditFailed`], so no figure can silently be built from a
//! report whose counters and events disagree. Audited runs also merge
//! their cluster counters into a process-wide ledger
//! ([`counters_snapshot`]) that `reproduce` prints per target.

use mapreduce::auditor::{audit, AuditSetup};
use mapreduce::policy::{SlotPolicy, StaticSlotPolicy};
use mapreduce::{
    CounterLedger, Engine, EngineArena, EngineConfig, EngineState, HashPoint, JobSpec, RunReport,
};
use serde::{Deserialize, Serialize};
use simgrid::error::SimError;
use simgrid::time::{SimDuration, SteppingMode};
use smapreduce::{HeteroSlotManagerPolicy, SlotManagerPolicy, SmrConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use sweepengine::{BatchedSweep, SweepCell, SweepOutcome};
use yarn::CapacityPolicy;

/// Process-wide telemetry sink every [`run_once`] threads into the engine.
/// Disabled (and allocation-free) unless [`install_telemetry`] was called —
/// the `reproduce --trace` path.
static TELEMETRY: OnceLock<telemetry::Telemetry> = OnceLock::new();

/// Engine steps simulated by this process across all runs and threads
/// (perf-summary input).
static TOTAL_STEPS: AtomicU64 = AtomicU64::new(0);

/// Simulated milliseconds covered by those steps (perf-summary input:
/// steps per simulated second shows what adaptive stepping saves).
static TOTAL_SIM_MS: AtomicU64 = AtomicU64::new(0);

/// Process-wide stepping-mode override (the `reproduce --engine` flag and
/// the cross-validation suite). `None` keeps each config's own mode.
static ENGINE_MODE: OnceLock<SteppingMode> = OnceLock::new();

/// Cluster counters merged from every audited run in this process, across
/// all threads. `reproduce` snapshots this before and after each target to
/// print the target's counter delta.
static RUN_COUNTERS: Mutex<CounterLedger> = Mutex::new(CounterLedger::new());

/// Install the process-wide telemetry sink used by all subsequent runs.
/// Returns `false` if a sink was already installed (the first one wins).
pub fn install_telemetry(telem: telemetry::Telemetry) -> bool {
    TELEMETRY.set(telem).is_ok()
}

/// The installed sink, or a disabled handle when none was installed.
pub fn active_telemetry() -> telemetry::Telemetry {
    TELEMETRY.get().cloned().unwrap_or_default()
}

/// Force every subsequent [`run_once`] in this process onto one stepping
/// mode, regardless of what each config says. Returns `false` if a mode
/// was already pinned (the first caller wins, like [`install_telemetry`]).
pub fn set_engine_mode(mode: SteppingMode) -> bool {
    ENGINE_MODE.set(mode).is_ok()
}

/// The pinned stepping mode, if any.
pub fn engine_mode() -> Option<SteppingMode> {
    ENGINE_MODE.get().copied()
}

/// Total engine steps simulated by this process so far.
pub fn total_steps() -> u64 {
    TOTAL_STEPS.load(Ordering::Relaxed)
}

/// Total simulated time covered by this process so far, in seconds.
pub fn total_sim_seconds() -> f64 {
    TOTAL_SIM_MS.load(Ordering::Relaxed) as f64 / 1000.0
}

/// Cluster counters accumulated by every [`run_once`] so far.
pub fn counters_snapshot() -> CounterLedger {
    RUN_COUNTERS.lock().expect("counters lock").clone()
}

/// Which system to run a workload under.
#[derive(Debug, Clone)]
pub enum System {
    /// Static slots (HadoopV1).
    HadoopV1,
    /// Container budget with map priority (YARN).
    Yarn,
    /// The paper's slot manager, default configuration.
    SMapReduce,
    /// The slot manager under a custom configuration (ablations).
    SMapReduceWith(SmrConfig),
    /// The §VII heterogeneous extension: capacity-proportional targets.
    SMapReduceHetero,
}

impl System {
    /// The three systems of every comparison figure.
    pub fn all() -> [System; 3] {
        [System::HadoopV1, System::Yarn, System::SMapReduce]
    }

    pub fn label(&self) -> &'static str {
        match self {
            System::HadoopV1 => "HadoopV1",
            System::Yarn => "YARN",
            System::SMapReduce | System::SMapReduceWith(_) => "SMapReduce",
            System::SMapReduceHetero => "SMapReduce-hetero",
        }
    }

    /// The system a capsule's recorded policy name maps back to — the
    /// default configuration of that policy (capsules carry policy *state*
    /// but not policy *configuration*, so an ablation run resumes under
    /// the default `SmrConfig`).
    pub fn from_label(label: &str) -> Option<System> {
        match label {
            "HadoopV1" => Some(System::HadoopV1),
            "YARN" => Some(System::Yarn),
            "SMapReduce" => Some(System::SMapReduce),
            "SMapReduce-hetero" => Some(System::SMapReduceHetero),
            _ => None,
        }
    }

    /// A fresh policy instance for this system.
    pub fn make_policy(&self) -> Box<dyn SlotPolicy> {
        match self {
            System::HadoopV1 => Box::new(StaticSlotPolicy),
            System::Yarn => Box::new(CapacityPolicy),
            System::SMapReduce => Box::new(SlotManagerPolicy::paper_default()),
            System::SMapReduceWith(cfg) => Box::new(SlotManagerPolicy::new(cfg.clone())),
            System::SMapReduceHetero => Box::new(HeteroSlotManagerPolicy::paper_default()),
        }
    }
}

/// Seed-averaged timings of one (workload, system) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AveragedRun {
    pub system: String,
    /// Mean per-job map time (s) — averaged across trials, then jobs.
    pub map_time_s: f64,
    /// Mean per-job reduce time (s).
    pub reduce_time_s: f64,
    /// Mean per-job total time (s).
    pub total_time_s: f64,
    /// Mean per-job throughput (MB/s of input).
    pub throughput: f64,
    /// Mean of per-trial mean execution times (multi-job workloads).
    pub mean_execution_s: f64,
    /// Mean of per-trial makespans.
    pub makespan_s: f64,
    /// One representative full report (first trial) for series data.
    pub sample: RunReport,
}

/// Run `jobs` under `system` once with the given seed. The finished report
/// is audited before being returned: a counter/event invariant violation
/// surfaces as [`SimError::AuditFailed`].
pub fn run_once(
    cfg: &EngineConfig,
    jobs: Vec<JobSpec>,
    system: &System,
    seed: u64,
) -> Result<RunReport, SimError> {
    let cfg = effective_config(cfg, seed);
    let setup = AuditSetup::from_config(&cfg);
    let mut policy = system.make_policy();
    let report = Engine::new(cfg).run_with(jobs, policy.as_mut(), &active_telemetry())?;
    account_and_audit(report, &setup)
}

/// [`run_once`] drawing scratch from a recycled [`EngineArena`] — the
/// pool-worker path. Byte-identical results; only allocation behaviour
/// differs.
pub fn run_once_in(
    cfg: &EngineConfig,
    jobs: Vec<JobSpec>,
    system: &System,
    seed: u64,
    arena: &mut EngineArena,
) -> Result<RunReport, SimError> {
    let cfg = effective_config(cfg, seed);
    let setup = AuditSetup::from_config(&cfg);
    let mut policy = system.make_policy();
    let report = Engine::new(cfg).run_in(jobs, policy.as_mut(), &active_telemetry(), arena)?;
    account_and_audit(report, &setup)
}

/// [`run_once`], additionally capturing a state capsule at every multiple
/// of `every` simulated time. The run is audited like any other.
pub fn run_once_with_snapshots(
    cfg: &EngineConfig,
    jobs: Vec<JobSpec>,
    system: &System,
    seed: u64,
    every: SimDuration,
) -> Result<(RunReport, Vec<EngineState>), SimError> {
    let cfg = effective_config(cfg, seed);
    let setup = AuditSetup::from_config(&cfg);
    let mut policy = system.make_policy();
    let (report, capsules) = Engine::new(cfg).run_with_snapshots(jobs, policy.as_mut(), every)?;
    Ok((account_and_audit(report, &setup)?, capsules))
}

/// [`run_once_with_snapshots`], additionally recording the engine's
/// per-step hash trace — the replay-verification path of the CI
/// equivalence gate.
pub fn run_once_with_snapshots_traced(
    cfg: &EngineConfig,
    jobs: Vec<JobSpec>,
    system: &System,
    seed: u64,
    every: SimDuration,
) -> Result<(RunReport, Vec<EngineState>, Vec<HashPoint>), SimError> {
    let cfg = effective_config(cfg, seed);
    let setup = AuditSetup::from_config(&cfg);
    let mut policy = system.make_policy();
    let (report, capsules, trace) =
        Engine::new(cfg).run_with_snapshots_traced(jobs, policy.as_mut(), every)?;
    Ok((account_and_audit(report, &setup)?, capsules, trace))
}

/// Resume a capsule to completion under a fresh instance of `system`
/// (which must match the capsule's recorded policy name), with the same
/// auditing and accounting as [`run_once`].
pub fn resume_once(state: EngineState, system: &System) -> Result<RunReport, SimError> {
    let setup = AuditSetup::from_config(state.config());
    let mut policy = system.make_policy();
    let report = Engine::resume_with(state, policy.as_mut(), &active_telemetry())?;
    account_and_audit(report, &setup)
}

/// [`resume_once`], additionally recording the resumed run's per-step
/// hash trace for comparison against the straight run's.
pub fn resume_once_traced(
    state: EngineState,
    system: &System,
) -> Result<(RunReport, Vec<HashPoint>), SimError> {
    let setup = AuditSetup::from_config(state.config());
    let mut policy = system.make_policy();
    let (report, trace) = Engine::resume_traced(state, policy.as_mut())?;
    Ok((account_and_audit(report, &setup)?, trace))
}

/// [`resume_once`] drawing scratch from a recycled [`EngineArena`].
pub fn resume_once_in(
    state: EngineState,
    system: &System,
    arena: &mut EngineArena,
) -> Result<RunReport, SimError> {
    let setup = AuditSetup::from_config(state.config());
    let mut policy = system.make_policy();
    let report = Engine::resume_in(state, policy.as_mut(), &active_telemetry(), arena)?;
    account_and_audit(report, &setup)
}

/// Boot the cluster and DFS for `jobs` and capture the t=0 capsule sweeps
/// warm-start from, under the process-wide engine-mode override and the
/// given seed (the capsule can only be resumed under configs with this
/// seed).
pub fn prepare_warm(
    cfg: &EngineConfig,
    jobs: Vec<JobSpec>,
    seed: u64,
) -> Result<EngineState, SimError> {
    Engine::new(effective_config(cfg, seed)).prepare(jobs)
}

/// Run one sweep cell from a shared warm capsule: bind the capsule to the
/// cell's config (fault plan, knobs — cluster/seed/block size must match
/// the capture) and `system`, then resume. Byte-identical to a cold
/// [`run_once`] of the same cell — proven by `warm_start_equals_cold_run`
/// below.
pub fn run_warm(
    warm: &EngineState,
    cfg: &EngineConfig,
    system: &System,
    seed: u64,
) -> Result<RunReport, SimError> {
    let mut state = warm.clone();
    state.override_config(effective_config(cfg, seed))?;
    state.override_policy(system.label())?;
    resume_once(state, system)
}

/// [`run_warm`] drawing scratch from a recycled [`EngineArena`].
pub fn run_warm_in(
    warm: &EngineState,
    cfg: &EngineConfig,
    system: &System,
    seed: u64,
    arena: &mut EngineArena,
) -> Result<RunReport, SimError> {
    let mut state = warm.clone();
    state.override_config(effective_config(cfg, seed))?;
    state.override_policy(system.label())?;
    resume_once_in(state, system, arena)
}

/// The per-run config: the cell's config with the trial seed and the
/// process-wide `--engine` override applied.
fn effective_config(cfg: &EngineConfig, seed: u64) -> EngineConfig {
    let mut cfg = cfg.clone();
    cfg.seed = seed;
    if let Some(mode) = engine_mode() {
        cfg.tick.mode = mode;
    }
    cfg
}

/// Step accounting, invariant audit, process-counter merge — shared by
/// every run variant so no report escapes unaudited.
fn account_and_audit(report: RunReport, setup: &AuditSetup) -> Result<RunReport, SimError> {
    TOTAL_STEPS.fetch_add(report.steps, Ordering::Relaxed);
    let sim_ms = report
        .jobs
        .iter()
        .map(|j| j.finished_at.as_millis())
        .max()
        .unwrap_or(0);
    TOTAL_SIM_MS.fetch_add(sim_ms, Ordering::Relaxed);
    let violations = audit(&report, setup);
    if !violations.is_empty() {
        return Err(SimError::AuditFailed {
            violations: violations.iter().map(|v| v.to_string()).collect(),
        });
    }
    RUN_COUNTERS
        .lock()
        .expect("counters lock")
        .merge(&report.counters);
    Ok(report)
}

/// Derive the seed of trial `trial` from a cell's base seed with a
/// splitmix64-style mixer. The old `base + 1000 * trial` scheme made
/// trial 1 of seed 0 collide with trial 0 of seed 1000 — adjacent sweep
/// cells silently averaged over overlapping seed sets.
pub fn trial_seed(cell_seed: u64, trial: u64) -> u64 {
    let mut z =
        cell_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One grid cell, ready for the [`BatchedSweep`] pool: the cell's config,
/// the system to run, its trial seed, and either a cold job list or a
/// shared warm-start capsule. Grid drivers build a `Vec<CellRequest>` for
/// the *whole* grid and hand it to [`run_cells`] in one call.
#[derive(Debug, Clone)]
pub struct CellRequest {
    cfg: EngineConfig,
    system: System,
    seed: u64,
    jobs: Vec<JobSpec>,
    warm: Option<Arc<EngineState>>,
}

impl CellRequest {
    /// A cold cell: boots the cluster and DFS itself.
    pub fn cold(cfg: EngineConfig, jobs: Vec<JobSpec>, system: System, seed: u64) -> CellRequest {
        CellRequest {
            cfg,
            system,
            seed,
            jobs,
            warm: None,
        }
    }

    /// A warm cell: resumes `warm` (a shared [`prepare_warm`] capsule,
    /// typically interned through a [`sweepengine::PrefixCache`]) with the
    /// cell's config and system bound at resume time.
    pub fn warm(
        warm: Arc<EngineState>,
        cfg: EngineConfig,
        system: System,
        seed: u64,
    ) -> CellRequest {
        CellRequest {
            cfg,
            system,
            seed,
            jobs: Vec::new(),
            warm: Some(warm),
        }
    }
}

impl SweepCell for CellRequest {
    fn system(&self) -> &str {
        self.system.label()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn run(&self, arena: &mut EngineArena) -> Result<RunReport, SimError> {
        match &self.warm {
            Some(warm) => run_warm_in(warm, &self.cfg, &self.system, self.seed, arena),
            None => run_once_in(&self.cfg, self.jobs.clone(), &self.system, self.seed, arena),
        }
    }
}

/// Drive a grid of cells over the machine-sized pool. Reports come back
/// in cell order; a panicking cell re-raises tagged with (system, cell
/// index, trial seed).
pub fn run_cells(cells: &[CellRequest]) -> SweepOutcome {
    BatchedSweep::auto().run(cells)
}

/// [`run_cells`] with an explicit worker bound — the determinism suite
/// runs identical grids at 1, 2, and `available_parallelism` workers.
pub fn run_cells_with(workers: usize, cells: &[CellRequest]) -> SweepOutcome {
    BatchedSweep::with_workers(workers).run(cells)
}

/// Run `jobs` under `system` for `trials` seeds and average the timings.
pub fn run_averaged(
    cfg: &EngineConfig,
    jobs: &[JobSpec],
    system: &System,
    trials: usize,
) -> Result<AveragedRun, SimError> {
    run_averaged_by(cfg, system, trials, &|seed, arena| {
        run_once_in(cfg, jobs.to_vec(), system, seed, arena)
    })
}

/// [`run_averaged`] where every trial warm-starts from a shared capsule
/// of the common prefix (cluster boot + DFS load) instead of redoing it:
/// `warm_for_seed` hands back the [`prepare_warm`] capsule for a trial
/// seed, and each trial binds it to this cell's `cfg` and `system`.
pub fn run_averaged_warm(
    cfg: &EngineConfig,
    warm_for_seed: &(dyn Fn(u64) -> EngineState + Sync),
    system: &System,
    trials: usize,
) -> Result<AveragedRun, SimError> {
    run_averaged_by(cfg, system, trials, &|seed, arena| {
        run_warm_in(&warm_for_seed(seed), cfg, system, seed, arena)
    })
}

/// A closure-driven trial for [`run_averaged_by`]'s pool dispatch.
struct TrialCell<'a> {
    system: &'a System,
    seed: u64,
    run: &'a (dyn Fn(u64, &mut EngineArena) -> Result<RunReport, SimError> + Sync),
}

impl SweepCell for TrialCell<'_> {
    fn system(&self) -> &str {
        self.system.label()
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn run(&self, arena: &mut EngineArena) -> Result<RunReport, SimError> {
        (self.run)(self.seed, arena)
    }
}

fn run_averaged_by(
    cfg: &EngineConfig,
    system: &System,
    trials: usize,
    run: &(dyn Fn(u64, &mut EngineArena) -> Result<RunReport, SimError> + Sync),
) -> Result<AveragedRun, SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "run_averaged needs at least one trial".into(),
        ));
    }
    // the pool re-raises a panicking trial tagged (system, index, seed),
    // so a sweep failure still names the exact cell that died
    let cells: Vec<TrialCell> = (0..trials)
        .map(|t| TrialCell {
            system,
            seed: trial_seed(cfg.seed, t as u64),
            run,
        })
        .collect();
    let outcome = BatchedSweep::auto().run(&cells);
    let reports = outcome.reports.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(average_reports(system, reports))
}

/// Draw exactly `trials` reports from a pooled grid's report stream and
/// fold them to the first error in trial order. The chunk is always
/// consumed in full even when an early trial errored — error trials are
/// an expected outcome (e.g. the recovery-off rows of ext-faults), and
/// folding before the chunk is fully drawn would leave the shared
/// iterator misaligned, handing this cell's leftover reports to the next
/// grid cell.
pub(crate) fn take_cell_reports(
    reports: &mut dyn Iterator<Item = Result<RunReport, SimError>>,
    trials: usize,
) -> Result<Vec<RunReport>, SimError> {
    let chunk: Vec<Result<RunReport, SimError>> = reports.take(trials).collect();
    assert_eq!(chunk.len(), trials, "report stream exhausted mid-cell");
    chunk.into_iter().collect()
}

/// Trial-mean timings of one cell (callers guarantee `reports` is
/// non-empty). Grid drivers use this to fold each cell's chunk of a
/// batched sweep's reports back into an [`AveragedRun`].
pub(crate) fn average_reports(system: &System, mut reports: Vec<RunReport>) -> AveragedRun {
    let njobs = reports[0].jobs.len() as f64;
    let nt = reports.len() as f64;
    let mean_over =
        |f: &dyn Fn(&RunReport) -> f64| -> f64 { reports.iter().map(f).sum::<f64>() / nt };
    let per_job = |f: &dyn Fn(&mapreduce::JobReport) -> f64| -> f64 {
        reports
            .iter()
            .map(|r| r.jobs.iter().map(f).sum::<f64>() / njobs)
            .sum::<f64>()
            / nt
    };
    AveragedRun {
        system: system.label().to_string(),
        map_time_s: per_job(&|j| j.map_time().as_secs_f64()),
        reduce_time_s: per_job(&|j| j.reduce_time().as_secs_f64()),
        total_time_s: per_job(&|j| j.total_time().as_secs_f64()),
        throughput: per_job(&|j| j.throughput()),
        mean_execution_s: mean_over(&|r| r.mean_execution_time().as_secs_f64()),
        makespan_s: mean_over(&|r| r.makespan().as_secs_f64()),
        sample: reports.swap_remove(0),
    }
}

/// Run the same workload under all three systems. One batched grid —
/// systems × trials cells — over the bounded pool, not a thread per
/// system: an idle worker picks up another system's remaining trials.
pub fn run_comparison(
    cfg: &EngineConfig,
    jobs: &[JobSpec],
    trials: usize,
) -> Result<Vec<AveragedRun>, SimError> {
    if trials == 0 {
        return Err(SimError::InvalidConfig(
            "run_averaged needs at least one trial".into(),
        ));
    }
    let systems = System::all();
    let cells: Vec<CellRequest> = systems
        .iter()
        .flat_map(|system| {
            (0..trials).map(move |t| {
                CellRequest::cold(
                    cfg.clone(),
                    jobs.to_vec(),
                    system.clone(),
                    trial_seed(cfg.seed, t as u64),
                )
            })
        })
        .collect();
    let mut reports = run_cells(&cells).reports.into_iter();
    systems
        .iter()
        .map(|system| {
            let chunk = take_cell_reports(&mut reports, trials)?;
            Ok(average_reports(system, chunk))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::time::SimTime;
    use workloads::Puma;

    fn small_cfg() -> EngineConfig {
        EngineConfig::small_test(4, 11)
    }

    fn small_job() -> JobSpec {
        Puma::Grep.job(0, 2048.0, 8, SimTime::ZERO)
    }

    #[test]
    fn run_once_all_systems() {
        let cfg = small_cfg();
        for sys in System::all() {
            let r = run_once(&cfg, vec![small_job()], &sys, 1).expect("completes");
            assert_eq!(r.policy, sys.label());
            assert_eq!(r.jobs.len(), 1);
        }
    }

    #[test]
    fn averaging_is_sane() {
        let cfg = small_cfg();
        let avg = run_averaged(&cfg, &[small_job()], &System::HadoopV1, 2).unwrap();
        assert!(avg.total_time_s > 0.0);
        assert!(
            (avg.map_time_s + avg.reduce_time_s - avg.total_time_s).abs() < 1e-6,
            "map+reduce = total per definition"
        );
        assert!(avg.throughput > 0.0);
    }

    #[test]
    fn batched_cells_match_the_legacy_sequential_path() {
        // a mixed cold/warm grid through the pool must be byte-identical
        // to running each cell on its own, the pre-pool way
        let cfg = small_cfg();
        let warm = Arc::new(prepare_warm(&cfg, vec![small_job()], 5).expect("prepare"));
        let cells = vec![
            CellRequest::cold(cfg.clone(), vec![small_job()], System::HadoopV1, 3),
            CellRequest::warm(Arc::clone(&warm), cfg.clone(), System::SMapReduce, 5),
            CellRequest::cold(cfg.clone(), vec![small_job()], System::Yarn, 4),
        ];
        let pooled = run_cells(&cells);
        let legacy = [
            run_once(&cfg, vec![small_job()], &System::HadoopV1, 3).unwrap(),
            run_warm(&warm, &cfg, &System::SMapReduce, 5).unwrap(),
            run_once(&cfg, vec![small_job()], &System::Yarn, 4).unwrap(),
        ];
        for (got, want) in pooled.reports.iter().zip(&legacy) {
            assert_eq!(
                serde_json::to_string(got.as_ref().unwrap()).unwrap(),
                serde_json::to_string(want).unwrap()
            );
        }
        assert!(pooled.stats.peak_resident_cells <= pooled.stats.workers);
    }

    #[test]
    fn comparison_runs_three_systems() {
        let cfg = small_cfg();
        let rows = run_comparison(&cfg, &[small_job()], 1).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].system, "HadoopV1");
        assert_eq!(rows[1].system, "YARN");
        assert_eq!(rows[2].system, "SMapReduce");
    }

    #[test]
    fn ablation_system_uses_custom_config() {
        let cfg = small_cfg();
        let sys = System::SMapReduceWith(SmrConfig::without_slow_start());
        let r = run_once(&cfg, vec![small_job()], &sys, 1).unwrap();
        assert_eq!(r.policy, "SMapReduce");
    }

    #[test]
    fn zero_trials_is_an_error() {
        let cfg = small_cfg();
        let err = run_averaged(&cfg, &[small_job()], &System::HadoopV1, 0);
        assert!(matches!(err, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn trial_seeds_do_not_collide_across_cells() {
        // the old base + 1000*t scheme collided: (0, t=1) == (1000, t=0)
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1000, 2000, 3000] {
            for t in 0..3u64 {
                assert!(
                    seen.insert(trial_seed(base, t)),
                    "seed collision at base={base} trial={t}"
                );
            }
        }
    }

    #[test]
    fn runs_accumulate_process_counters() {
        let cfg = small_cfg();
        let before = counters_snapshot();
        let r = run_once(&cfg, vec![small_job()], &System::HadoopV1, 3).unwrap();
        let delta = counters_snapshot().delta_from(&before);
        assert!(!r.counters.is_zero());
        // other tests run concurrently, so the delta is at least this run
        assert!(
            delta.get(mapreduce::Counter::TotalLaunchedMaps)
                >= r.counters.get(mapreduce::Counter::TotalLaunchedMaps)
        );
    }

    #[test]
    fn warm_start_equals_cold_run() {
        use simgrid::cluster::NodeId;
        use simgrid::{FaultPlan, NodeFault};
        // the sweep pattern: one shared prepare() capsule, per-cell fault
        // plan bound at resume time — must be byte-identical to the cold run
        let base = small_cfg();
        let mut cell = base.clone();
        cell.fault_plan = FaultPlan::new(vec![NodeFault::transient(
            NodeId(1),
            SimTime::from_secs(30),
            simgrid::time::SimDuration::from_secs(60),
        )]);
        let seed = 77;
        let warm = prepare_warm(&base, vec![small_job()], seed).expect("prepare");
        for sys in [System::HadoopV1, System::SMapReduce] {
            let warm_report = run_warm(&warm, &cell, &sys, seed).expect("warm run");
            let cold_report = run_once(&cell, vec![small_job()], &sys, seed).expect("cold run");
            assert_eq!(
                serde_json::to_string(&warm_report).unwrap(),
                serde_json::to_string(&cold_report).unwrap(),
                "{} warm-start diverged from the cold run",
                sys.label()
            );
        }
    }

    #[test]
    fn averaged_panics_carry_system_and_trial_seed() {
        let cfg = small_cfg();
        let bad_seed = trial_seed(cfg.seed, 1);
        let payload = std::panic::catch_unwind(|| {
            let _ = run_averaged_by(&cfg, &System::SMapReduce, 2, &|seed, arena| {
                if seed == bad_seed {
                    panic!("injected failure");
                }
                run_once_in(&cfg, vec![small_job()], &System::SMapReduce, seed, arena)
            });
        })
        .expect_err("second trial panics");
        let msg = payload
            .downcast_ref::<String>()
            .expect("re-panic carries a String");
        assert!(msg.contains("SMapReduce"), "no system in: {msg}");
        assert!(
            msg.contains(&format!("seed {bad_seed}")),
            "no trial seed in: {msg}"
        );
        assert!(
            msg.contains("injected failure"),
            "original message lost: {msg}"
        );
    }

    #[test]
    fn error_chunks_consume_their_full_trial_slice() {
        // an error mid-chunk must not leave the report stream misaligned:
        // the next cell reads its own trials, never the previous cell's
        // leftovers (a Full-scale ext-faults grid hits exactly this — the
        // recovery-off cells error on an early trial)
        let cfg = small_cfg();
        let h = run_once(&cfg, vec![small_job()], &System::HadoopV1, 1).unwrap();
        let y = run_once(&cfg, vec![small_job()], &System::Yarn, 2).unwrap();
        let s = run_once(&cfg, vec![small_job()], &System::SMapReduce, 3).unwrap();
        let stream: Vec<Result<RunReport, SimError>> = vec![
            Err(SimError::InvalidConfig("trial 0 died".into())),
            Ok(h),
            Ok(y),
            Ok(s),
        ];
        let mut reports = stream.into_iter();
        assert!(take_cell_reports(&mut reports, 2).is_err());
        let next = take_cell_reports(&mut reports, 2).expect("second cell is clean");
        assert_eq!(
            next[0].policy, "YARN",
            "second cell was handed the first cell's leftover report"
        );
        assert_eq!(next[1].policy, "SMapReduce");
    }

    #[test]
    fn same_seed_same_average() {
        let cfg = small_cfg();
        let a = run_averaged(&cfg, &[small_job()], &System::SMapReduce, 2).unwrap();
        let b = run_averaged(&cfg, &[small_job()], &System::SMapReduce, 2).unwrap();
        assert_eq!(a.total_time_s.to_bits(), b.total_time_s.to_bits());
    }
}

//! Persisting figure data: each experiment writes a plain-text rendering
//! (what the paper's figure shows) and a JSON file with the raw numbers.

use serde::Serialize;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Write `<name>.txt` and `<name>.json` under `dir`, creating it if needed.
/// Returns the two paths written.
pub fn write_outputs<T: Serialize>(
    dir: &Path,
    name: &str,
    text: &str,
    data: &T,
) -> io::Result<(PathBuf, PathBuf)> {
    fs::create_dir_all(dir)?;
    let txt = dir.join(format!("{name}.txt"));
    let json = dir.join(format!("{name}.json"));
    fs::write(&txt, text)?;
    let payload = serde_json::to_string_pretty(data)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(&json, payload)?;
    Ok((txt, json))
}

/// A figure as aligned series for gnuplot export: every series shares the
/// x grid (row `i` of each series has the same x).
#[derive(Debug, Clone)]
pub struct GnuplotFigure {
    pub title: String,
    pub xlabel: String,
    pub ylabel: String,
    /// `(legend label, points)`; all point vectors must share x values.
    pub series: Vec<(String, Vec<(f64, f64)>)>,
}

/// Write `<name>.dat` (x + one column per series) and `<name>.gp` (a
/// ready-to-run gnuplot script producing `<name>.png`).
pub fn write_gnuplot(dir: &Path, name: &str, fig: &GnuplotFigure) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    assert!(!fig.series.is_empty(), "gnuplot export needs data");
    let rows = fig.series[0].1.len();
    for (label, pts) in &fig.series {
        assert_eq!(
            pts.len(),
            rows,
            "series '{label}' length differs; the x grids must align"
        );
    }
    let labels: Vec<String> = fig
        .series
        .iter()
        .map(|(l, _)| l.replace(' ', "_"))
        .collect();
    let mut dat = format!("# {}\n# x {}\n", fig.title, labels.join(" "));
    for i in 0..rows {
        dat.push_str(&format!("{}", fig.series[0].1[i].0));
        for (_, pts) in &fig.series {
            dat.push_str(&format!(" {}", pts[i].1));
        }
        dat.push('\n');
    }
    let dat_path = dir.join(format!("{name}.dat"));
    fs::write(&dat_path, dat)?;

    let mut gp = String::new();
    gp.push_str("set terminal pngcairo size 900,540\n");
    gp.push_str(&format!("set output '{name}.png'\n"));
    gp.push_str(&format!("set title \"{}\"\n", fig.title));
    gp.push_str(&format!("set xlabel \"{}\"\n", fig.xlabel));
    gp.push_str(&format!("set ylabel \"{}\"\n", fig.ylabel));
    gp.push_str("set key outside right\nset grid\nplot ");
    let plots: Vec<String> = fig
        .series
        .iter()
        .enumerate()
        .map(|(k, (label, _))| {
            format!(
                "'{name}.dat' using 1:{} with linespoints title \"{label}\"",
                k + 2
            )
        })
        .collect();
    gp.push_str(&plots.join(", \\\n     "));
    gp.push('\n');
    let gp_path = dir.join(format!("{name}.gp"));
    fs::write(&gp_path, gp)?;
    Ok(gp_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_both_files() {
        let dir = std::env::temp_dir().join(format!("smr-out-{}", std::process::id()));
        let (txt, json) = write_outputs(&dir, "fig0", "hello\n", &vec![1, 2, 3]).unwrap();
        assert_eq!(fs::read_to_string(&txt).unwrap(), "hello\n");
        let v: Vec<i32> = serde_json::from_str(&fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gnuplot_files_well_formed() {
        let dir = std::env::temp_dir().join(format!("smr-gp-{}", std::process::id()));
        let fig = GnuplotFigure {
            title: "t".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![
                ("a".into(), vec![(1.0, 10.0), (2.0, 20.0)]),
                ("b series".into(), vec![(1.0, 5.0), (2.0, 7.0)]),
            ],
        };
        write_gnuplot(&dir, "fig", &fig).unwrap();
        let dat = fs::read_to_string(dir.join("fig.dat")).unwrap();
        assert!(dat.contains("1 10 5\n"));
        assert!(dat.contains("2 20 7\n"));
        assert!(dat.contains("b_series"));
        let gp = fs::read_to_string(dir.join("fig.gp")).unwrap();
        assert!(gp.contains("using 1:2"));
        assert!(gp.contains("using 1:3"));
        assert!(gp.contains("fig.png"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "length differs")]
    fn gnuplot_rejects_misaligned_series() {
        let fig = GnuplotFigure {
            title: "t".into(),
            xlabel: "x".into(),
            ylabel: "y".into(),
            series: vec![
                ("a".into(), vec![(1.0, 10.0)]),
                ("b".into(), vec![(1.0, 5.0), (2.0, 7.0)]),
            ],
        };
        let _ = write_gnuplot(std::env::temp_dir().as_path(), "bad", &fig);
    }
}

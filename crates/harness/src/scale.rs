//! Experiment scale: full paper-sized runs vs quick runs for CI/benches.

use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Paper-sized: 16 workers, 30 GB default inputs, 3 trials.
    Full,
    /// Reduced inputs and trials — same code paths, minutes → seconds.
    Quick,
}

impl Scale {
    /// Engine configuration at this scale (always the 16-worker testbed —
    /// the cluster is what the paper holds fixed; only inputs shrink).
    pub fn engine(self) -> EngineConfig {
        EngineConfig::paper_default()
    }

    /// Scale factor applied to input sizes.
    pub fn input_factor(self) -> f64 {
        match self {
            Scale::Full => 1.0,
            // Small enough for CI, large enough that the slot manager has
            // time to adapt (its slow start + climb need a few minutes of
            // simulated map phase).
            Scale::Quick => 0.3,
        }
    }

    /// Number of seeded trials to average.
    pub fn trials(self) -> usize {
        match self {
            Scale::Full => 3,
            Scale::Quick => 1,
        }
    }

    /// Scale an input size (MB).
    pub fn input(self, full_mb: f64) -> f64 {
        full_mb * self.input_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ_only_in_input_and_trials() {
        assert_eq!(Scale::Full.engine().cluster.workers, 16);
        assert_eq!(Scale::Quick.engine().cluster.workers, 16);
        assert!(Scale::Quick.input(1000.0) < 1000.0);
        assert_eq!(Scale::Full.input(1000.0), 1000.0);
        assert!(Scale::Quick.trials() <= Scale::Full.trials());
    }
}

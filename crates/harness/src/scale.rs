//! Experiment scale: full paper-sized runs vs quick runs for CI/benches.

use mapreduce::engine::EngineConfigBuilder;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};

/// Cluster size of the paper's testbed (§V). Figure targets reproduce the
/// paper and therefore pass this explicitly; nothing else in [`Scale`]
/// pins the cluster, so the scale bench can reuse the same machinery at
/// 64, 256 or 1024 nodes.
pub const TESTBED_WORKERS: usize = 16;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Paper-sized: 30 GB default inputs, 3 trials.
    Full,
    /// Reduced inputs and trials — same code paths, minutes → seconds.
    Quick,
}

impl Scale {
    /// Engine configuration for a `workers`-node cluster of paper-spec
    /// machines. `Scale` governs input sizes and trial counts only — the
    /// cluster size is always the caller's explicit choice.
    pub fn engine(self, workers: usize) -> EngineConfig {
        EngineConfigBuilder::paper().workers(workers).build()
    }

    /// The paper's 16-worker testbed configuration — what every figure
    /// target runs on (the cluster is what the paper holds fixed; only
    /// inputs shrink at [`Scale::Quick`]).
    pub fn testbed_engine(self) -> EngineConfig {
        self.engine(TESTBED_WORKERS)
    }

    /// Scale factor applied to input sizes.
    pub fn input_factor(self) -> f64 {
        match self {
            Scale::Full => 1.0,
            // Small enough for CI, large enough that the slot manager has
            // time to adapt (its slow start + climb need a few minutes of
            // simulated map phase).
            Scale::Quick => 0.3,
        }
    }

    /// Number of seeded trials to average.
    pub fn trials(self) -> usize {
        match self {
            Scale::Full => 3,
            Scale::Quick => 1,
        }
    }

    /// Scale an input size (MB).
    pub fn input(self, full_mb: f64) -> f64 {
        full_mb * self.input_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_differ_only_in_input_and_trials() {
        // the cluster size is an explicit parameter, not a Scale property
        assert_eq!(Scale::Full.engine(64).cluster.workers, 64);
        assert_eq!(Scale::Quick.engine(1024).cluster.workers, 1024);
        // figure targets get the paper testbed by construction
        assert_eq!(Scale::Full.testbed_engine().cluster.workers, 16);
        assert_eq!(
            Scale::Quick.testbed_engine().cluster.to_value(),
            EngineConfig::paper_default().cluster.to_value(),
            "testbed engine is exactly the paper cluster"
        );
        assert!(Scale::Quick.input(1000.0) < 1000.0);
        assert_eq!(Scale::Full.input(1000.0), 1000.0);
        assert!(Scale::Quick.trials() <= Scale::Full.trials());
    }
}

//! Figure 6 — HistogramRatings job throughput vs input size (50–250 GB).
//!
//! Expected shape: HadoopV1 and YARN throughputs are flat in input size;
//! SMapReduce's *rises* with input size (a longer job gives the slot
//! manager more time at the converged optimum), reaching roughly 2× the
//! HadoopV1 throughput and ~1.3× YARN at the largest size.

use crate::runner::{run_averaged, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use workloads::Puma;

/// One system's throughput per input size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeCurve {
    pub system: String,
    /// `(input GB, job throughput MB/s)`.
    pub points: Vec<(f64, f64)>,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    pub benchmark: String,
    pub curves: Vec<SizeCurve>,
}

impl Fig6 {
    /// Throughput ratio SMapReduce / `baseline` at the largest input.
    pub fn final_ratio(&self, baseline: &str) -> f64 {
        let last = |name: &str| {
            self.curves
                .iter()
                .find(|c| c.system == name)
                .expect("curve present")
                .points
                .last()
                .expect("non-empty")
                .1
        };
        last("SMapReduce") / last(baseline)
    }
}

/// Run the sweep.
pub fn run(scale: Scale) -> Fig6 {
    let bench = Puma::HistogramRatings;
    let cfg = EngineConfig::paper_default();
    let sizes = workloads::input_sweep_gb();
    let curves = System::all()
        .iter()
        .map(|sys| {
            let points = sizes
                .iter()
                .map(|&gb| {
                    let job = bench.job(0, scale.input(gb * 1024.0), 30, Default::default());
                    let avg = run_averaged(&cfg, &[job], sys, scale.trials()).expect("fig6 run");
                    (gb, avg.throughput)
                })
                .collect();
            SizeCurve {
                system: sys.label().to_string(),
                points,
            }
        })
        .collect();
    Fig6 {
        benchmark: bench.name().to_string(),
        curves,
    }
}

/// Figure as gnuplot series.
pub fn to_gnuplot(f: &Fig6) -> crate::output::GnuplotFigure {
    crate::output::GnuplotFigure {
        title: format!("Fig. 6 — {} throughput vs input size", f.benchmark),
        xlabel: "input size (GB)".into(),
        ylabel: "job throughput (MB/s)".into(),
        series: f
            .curves
            .iter()
            .map(|c| (c.system.clone(), c.points.clone()))
            .collect(),
    }
}

/// Plain-text rendering.
pub fn render(f: &Fig6) -> String {
    let mut out = format!(
        "Figure 6 — {} job throughput (MB/s) vs input size (GB)\n\n",
        f.benchmark
    );
    let mut headers = vec!["GB".to_string()];
    headers.extend(f.curves.iter().map(|c| c.system.clone()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = (0..f.curves[0].points.len())
        .map(|i| {
            let mut row = vec![format!("{:.0}", f.curves[0].points[i].0)];
            row.extend(f.curves.iter().map(|c| format!("{:.1}", c.points[i].1)));
            row
        })
        .collect();
    out.push_str(&table::render_table(&headers_ref, &rows));
    out.push_str(&format!(
        "\nAt the largest input: SMapReduce/HadoopV1 = {:.2}x, SMapReduce/YARN = {:.2}x\n",
        f.final_ratio("HadoopV1"),
        f.final_ratio("YARN"),
    ));
    out.push_str("(paper: ~2.0x and ~1.3x at 250 GB)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smapreduce_throughput_grows_with_input() {
        let f = run(Scale::Quick);
        let smr = f
            .curves
            .iter()
            .find(|c| c.system == "SMapReduce")
            .expect("curve present");
        let first = smr.points.first().expect("non-empty").1;
        let last = smr.points.last().expect("non-empty").1;
        assert!(
            last > first * 1.05,
            "SMR throughput should grow with input: {first} -> {last}"
        );
        // baselines stay roughly flat
        for name in ["HadoopV1", "YARN"] {
            let c = f
                .curves
                .iter()
                .find(|c| c.system == name)
                .expect("curve present");
            let first = c.points.first().unwrap().1;
            let last = c.points.last().unwrap().1;
            assert!(
                (last / first - 1.0).abs() < 0.25,
                "{name} should be ~flat: {first} -> {last}"
            );
        }
        assert!(f.final_ratio("HadoopV1") > f.final_ratio("YARN"));
    }

    #[test]
    fn render_shows_ratios() {
        let f = Fig6 {
            benchmark: "B".into(),
            curves: vec![
                SizeCurve {
                    system: "HadoopV1".into(),
                    points: vec![(50.0, 100.0)],
                },
                SizeCurve {
                    system: "YARN".into(),
                    points: vec![(50.0, 150.0)],
                },
                SizeCurve {
                    system: "SMapReduce".into(),
                    points: vec![(50.0, 200.0)],
                },
            ],
        };
        let s = render(&f);
        assert!(s.contains("2.00x"));
        assert!(s.contains("1.33x"));
    }
}

//! Analytical cross-check — the paper's §III-B1 time model vs the
//! simulator.
//!
//! The slot manager's design rests on two closed-form expressions for the
//! *front stretch* (start → end of the first-wave shuffle):
//!
//! * matched case (`R_s` keeps up):      `t = M / T_m`
//! * unmatched case (shuffle lags):      `t = M/T_m + (R − (M/T_m)·T_r1)/T_r2`
//!
//! This module instantiates those formulas from first principles — the
//! node contention model supplies `T_m`, the per-reducer ingest caps supply
//! `T_r1`/`T_r2` — and compares the prediction against a full HadoopV1
//! simulation (static slots: the regime the equations describe). Agreement
//! within tens of percent is the acceptance bar; the fluid model ignores
//! wave quantisation, ramp-up and jitter.

use crate::runner::{run_once, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::{EngineConfig, Event};
use serde::{Deserialize, Serialize};
use simgrid::node::allocate_node;
use smapreduce::balance;
use workloads::Puma;

/// One benchmark's prediction vs measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCell {
    pub benchmark: String,
    /// Predicted map time (s), `M / T_m`.
    pub predicted_map_s: f64,
    pub measured_map_s: f64,
    /// Predicted front stretch (s): map time plus residual shuffle.
    pub predicted_front_s: f64,
    /// Measured front stretch: start → last first-wave shuffle completion.
    pub measured_front_s: f64,
}

impl ModelCell {
    pub fn map_error(&self) -> f64 {
        (self.predicted_map_s / self.measured_map_s - 1.0).abs()
    }

    pub fn front_error(&self) -> f64 {
        (self.predicted_front_s / self.measured_front_s - 1.0).abs()
    }
}

/// The check's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelCheck {
    pub cells: Vec<ModelCell>,
}

/// Benchmarks spanning the matched (map-heavy) and unmatched
/// (reduce-heavy) regimes.
pub const BENCHMARKS: [Puma; 4] = [
    Puma::Grep,
    Puma::WordCount,
    Puma::InvertedIndex,
    Puma::Terasort,
];

/// Predict `(map_time, front_stretch)` for `bench` from the analytic model.
pub fn predict(cfg: &EngineConfig, bench: Puma, input_mb: f64, num_reduces: usize) -> (f64, f64) {
    let p = bench.profile();
    let workers = cfg.cluster.workers as f64;
    let spec = &cfg.cluster.node;
    let slots = cfg.init_map_slots;

    // steady-state per-node allocation: `slots` maps + the node's share of
    // shuffling reducers
    let reducers_per_node = (num_reduces as f64 / workers).ceil() as usize;
    let mut demands = vec![p.map_demand(); slots];
    demands.extend(vec![p.shuffle_demand(); reducers_per_node]);
    let scales = allocate_node(spec, &demands);
    let map_scale: f64 = scales[..slots].iter().sum();
    let shuffle_scale: f64 = scales[slots..].iter().sum::<f64>() / reducers_per_node as f64;

    // M: equivalent-MB of map work, T_m: cluster map work rate
    let n_tasks = (input_mb / cfg.block_mb).ceil();
    let work_per_task = cfg.block_mb * (1.0 + p.spill_weight * p.map_selectivity)
        + p.map_rate * mapreduce::task::MapTask::MAP_SETUP_S;
    let m_work = n_tasks * work_per_task;
    let t_m = workers * p.map_rate * map_scale;
    let map_time = m_work / t_m;

    // R: shuffle volume; T_r1 in-flight, T_r2 post-barrier ingest capacity
    let r_volume = input_mb * p.map_selectivity;
    let t_r1 = num_reduces as f64 * p.shuffle_merge_rate * shuffle_scale;
    let t_r2 = num_reduces as f64 * p.shuffle_merge_rate * p.shuffle_barrier_boost;
    let front = balance::front_stretch_unmatched(m_work, t_m, r_volume, t_r1, t_r2);
    (map_time, front)
}

/// Run the cross-check.
pub fn run(scale: Scale) -> ModelCheck {
    let mut cfg = EngineConfig::paper_default();
    cfg.record_events = true;
    cfg.jitter_amp = 0.0; // the model is deterministic; compare like for like
    let cells = BENCHMARKS
        .iter()
        .map(|&bench| {
            let input = scale.input(bench.default_input_mb());
            let (predicted_map_s, predicted_front_s) = predict(&cfg, bench, input, 30);
            let job = bench.job(0, input, 30, Default::default());
            let r = run_once(&cfg, vec![job], &System::HadoopV1, cfg.seed).expect("model run");
            let j = &r.jobs[0];
            let start = j.started_at;
            let measured_front_s = r
                .events
                .events()
                .iter()
                .filter_map(|e| match e {
                    Event::ShuffleCompleted { at, .. } => Some(at.since(start).as_secs_f64()),
                    _ => None,
                })
                .fold(0.0, f64::max);
            ModelCell {
                benchmark: bench.name().to_string(),
                predicted_map_s,
                measured_map_s: j.map_time().as_secs_f64(),
                predicted_front_s,
                measured_front_s,
            }
        })
        .collect();
    ModelCheck { cells }
}

/// Plain-text rendering.
pub fn render(m: &ModelCheck) -> String {
    let mut out = String::from(
        "Model cross-check — §III-B1 equations vs simulation (HadoopV1, no jitter)\n\n",
    );
    let headers = [
        "benchmark",
        "map pred(s)",
        "map sim(s)",
        "err",
        "front pred(s)",
        "front sim(s)",
        "err",
    ];
    let rows: Vec<Vec<String>> = m
        .cells
        .iter()
        .map(|c| {
            vec![
                c.benchmark.clone(),
                table::secs(c.predicted_map_s),
                table::secs(c.measured_map_s),
                format!("{:.0}%", c.map_error() * 100.0),
                table::secs(c.predicted_front_s),
                table::secs(c.measured_front_s),
                format!("{:.0}%", c.front_error() * 100.0),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    out.push_str("\n(fluid model: ignores wave quantisation, ramp-up, and heartbeat latency)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_simulation() {
        let m = run(Scale::Quick);
        assert_eq!(m.cells.len(), 4);
        for c in &m.cells {
            assert!(
                c.map_error() < 0.35,
                "{}: map prediction off by {:.0}% ({} vs {})",
                c.benchmark,
                c.map_error() * 100.0,
                c.predicted_map_s,
                c.measured_map_s
            );
            assert!(
                c.front_error() < 0.40,
                "{}: front-stretch prediction off by {:.0}% ({} vs {})",
                c.benchmark,
                c.front_error() * 100.0,
                c.predicted_front_s,
                c.measured_front_s
            );
            // front stretch cannot precede the barrier
            assert!(c.measured_front_s >= c.measured_map_s - 1e-6);
            assert!(c.predicted_front_s >= c.predicted_map_s - 1e-6);
        }
    }
}

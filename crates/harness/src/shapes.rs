//! The qualitative claims of each paper figure, as reusable assertions.
//!
//! Two suites run these against real figure data: `tests/paper_shapes.rs`
//! under the default (adaptive) stepping, and `tests/cross_validation.rs`
//! with the process pinned to the fixed-tick reference engine. Keeping
//! the assertions in one place guarantees the two modes are held to the
//! *same* bar — a divergence fails exactly one suite and names the mode.

use crate::{fig1, fig4, fig5, fig6, fig89};

/// Fig. 1: throughput rises from 1 slot to the knee, and map-heavy
/// benchmarks keep climbing longer than shuffle-bound ones.
pub fn assert_fig1_shape(f: &fig1::Fig1) {
    for c in &f.curves {
        let at = |slots: usize| c.points.iter().find(|p| p.0 == slots).unwrap().1;
        assert!(
            at(c.peak_slots) > at(1),
            "{}: knee must beat 1 slot",
            c.benchmark
        );
    }
    let knee = |name: &str| {
        f.curves
            .iter()
            .find(|c| c.benchmark == name)
            .unwrap()
            .peak_slots
    };
    assert!(knee("Grep") > knee("Terasort"), "map-heavy knees later");
}

/// Fig. 4: every progress curve crosses 100 % (the map barrier) strictly
/// before its end.
pub fn assert_fig4_shape(f: &fig4::Fig4) {
    for c in &f.curves {
        let t100 = c.points.iter().find(|p| p.1 >= 100.0).unwrap().0;
        let t_end = c.points.last().unwrap().0;
        assert!(t100 < t_end, "{}: barrier inside the run", c.system);
    }
}

/// Fig. 5: SMapReduce is flattest across configured slot counts, while
/// HadoopV1 is visibly configuration-sensitive.
pub fn assert_fig5_shape(f: &fig5::Fig5) {
    let spread = |name: &str| {
        let c = f.curves.iter().find(|c| c.system == name).unwrap();
        let ts: Vec<f64> = c.points.iter().map(|p| p.1).collect();
        ts.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            / ts.iter().copied().fold(f64::INFINITY, f64::min)
    };
    assert!(spread("SMapReduce") < spread("HadoopV1"));
    assert!(spread("HadoopV1") > 1.3, "V1 must be config-sensitive");
}

/// Fig. 6: SMapReduce's advantage grows with input size.
pub fn assert_fig6_shape(f: &fig6::Fig6) {
    let smr = f.curves.iter().find(|c| c.system == "SMapReduce").unwrap();
    assert!(smr.points.last().unwrap().1 > smr.points.first().unwrap().1);
    assert!(f.final_ratio("HadoopV1") > 1.2);
    assert!(f.final_ratio("YARN") > 1.0);
}

/// Fig. 8: four concurrent Grep jobs — SMapReduce wins mean execution
/// time and last finish.
pub fn assert_fig8_shape(f: &fig89::FigMultiJob) {
    let smr = f.cell("SMapReduce");
    let v1 = f.cell("HadoopV1");
    assert!(smr.mean_execution_s < v1.mean_execution_s);
    assert!(smr.last_finish_s < v1.last_finish_s);
}

/// Fig. 9: InvertedIndex multi-job — SMapReduce at worst ties HadoopV1.
pub fn assert_fig9_shape(f: &fig89::FigMultiJob) {
    let smr = f.cell("SMapReduce");
    let v1 = f.cell("HadoopV1");
    assert!(smr.last_finish_s < v1.last_finish_s * 1.02);
}

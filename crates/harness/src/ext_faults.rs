//! Extension experiment — node crashes, recovery, and slot management.
//!
//! Not a paper figure. The paper's testbed never loses a machine; real
//! clusters do, and Hadoop 1.x's whole recovery path (tracker expiry, map
//! re-execution when completed output dies with a node, replica fallback)
//! exists for that case. This experiment sweeps a burst of transient
//! node crashes (MTTF derived from the fault-free makespan) across the
//! three systems and measures how much each one's makespan degrades. The
//! recovery-off rows document the failure mode the recovery path
//! prevents: a crash that strands needed work surfaces a clean
//! `NodeLost` error instead of hanging.

use crate::runner::{
    average_reports, prepare_warm, run_cells, run_once, take_cell_reports, trial_seed, CellRequest,
    System,
};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use simgrid::cluster::NodeId;
use simgrid::time::{SimDuration, SimTime};
use simgrid::{FaultPlan, NodeFault};
use std::sync::Arc;
use sweepengine::PrefixCache;
use workloads::Puma;

/// One (MTTF, system, recovery) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultCell {
    /// "none", "high" (MTTF = M/2) or "low" (MTTF = M/4), where M is the
    /// fault-free HadoopV1 makespan.
    pub mttf: String,
    /// The swept MTTF in seconds (0 for the fault-free row).
    pub mttf_s: f64,
    pub system: String,
    pub recovery: bool,
    /// "ok", or the error the run surfaced (recovery-off rows).
    pub outcome: String,
    /// Seed-averaged makespan (0 when the run errored).
    pub makespan_s: f64,
    pub node_crashes: u64,
    pub crash_task_kills: u64,
    pub lost_map_outputs: u64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtFaults {
    pub benchmark: String,
    /// Fault-free HadoopV1 makespan (s) the MTTF values are derived from.
    pub baseline_makespan_s: f64,
    pub cells: Vec<FaultCell>,
}

impl ExtFaults {
    pub fn cell(&self, mttf: &str, system: &str, recovery: bool) -> &FaultCell {
        self.cells
            .iter()
            .find(|c| c.mttf == mttf && c.system == system && c.recovery == recovery)
            .unwrap_or_else(|| panic!("no cell {mttf}/{system}/{recovery}"))
    }

    /// Relative makespan degradation of `system` at `mttf` vs its own
    /// fault-free run (recovery on).
    pub fn degradation(&self, mttf: &str, system: &str) -> f64 {
        let base = self.cell("none", system, true).makespan_s;
        let hurt = self.cell(mttf, system, true).makespan_s;
        hurt / base - 1.0
    }
}

/// Crash every `mttf_s` seconds over the baseline window, cycling through
/// the workers (node 0 is spared so the sweep never reduces every replica
/// set at once). Instants land on the 3 s heartbeat grid; each crash is
/// transient with a downtime well past the 30 s expiry interval, so the
/// full detect → recover → re-register cycle runs.
fn plan_for(mttf_s: f64, window_s: f64, workers: usize) -> FaultPlan {
    let mut faults = Vec::new();
    let mut k = 1u64;
    loop {
        let t = mttf_s * k as f64;
        if t >= window_s {
            break;
        }
        let at_ms = ((t * 1000.0) as u64 / 3000).max(1) * 3000;
        let node = NodeId(1 + ((k - 1) as usize % (workers - 1)));
        faults.push(NodeFault::transient(
            node,
            SimTime::from_millis(at_ms),
            SimDuration::from_secs(120),
        ));
        k += 1;
    }
    FaultPlan::new(faults)
}

/// Run the grid.
pub fn run(scale: Scale) -> ExtFaults {
    let bench = Puma::HistogramRatings;
    let mut cfg = EngineConfig::paper_default();
    // Size the re-replication budget to the fault rate this sweep injects:
    // at full scale each node holds ~11.5 GB of replicas (60 GB × 3 / 16),
    // and at MTTF = M/4 a fresh node dies every ~70 s — the default
    // 50 MB/s budget can't restore a dead node's replica set before the
    // next crash, so a block really can lose its last copy. 400 MB/s
    // keeps re-replication ahead of the crash rate (the recovery-off rows
    // below show what the error looks like when protection is absent).
    cfg.rereplication_rate = 400.0;
    let job = || {
        bench.job(
            0,
            scale.input(bench.default_input_mb()),
            30,
            Default::default(),
        )
    };
    // calibrate the MTTF sweep on the fault-free HadoopV1 makespan
    let baseline = run_once(&cfg, vec![job()], &System::HadoopV1, cfg.seed)
        .expect("fault-free baseline completes");
    let m = baseline.makespan().as_secs_f64();
    let workers = cfg.cluster.workers;
    let mttfs: Vec<(&str, f64)> = vec![("none", 0.0), ("high", m / 2.0), ("low", m / 4.0)];
    // every cell of the grid shares the same cluster boot + DFS load per
    // trial seed; capture that common prefix once per seed — interned by
    // content fingerprint, so identical prefixes keep one resident
    // capsule — and let all 18 cells warm-start from it (fault plan and
    // policy bind at resume)
    let prefixes = PrefixCache::new();
    let warms: std::collections::HashMap<u64, Arc<mapreduce::EngineState>> = (0..scale.trials())
        .map(|t| {
            let seed = trial_seed(cfg.seed, t as u64);
            let capsule = prepare_warm(&cfg, vec![job()], seed).expect("warm capture");
            (seed, prefixes.intern(capsule))
        })
        .collect();
    // build the full grid — (MTTF × system × recovery) × trials — and
    // drive it through the bounded pool in one batch
    let mut grid = Vec::new();
    let mut requests = Vec::new();
    for (label, mttf_s) in &mttfs {
        let plan = if *mttf_s > 0.0 {
            plan_for(*mttf_s, m, workers)
        } else {
            FaultPlan::none()
        };
        for sys in System::all() {
            for recovery in [true, false] {
                let mut cell_cfg = cfg.clone();
                cell_cfg.fault_plan = plan.clone();
                cell_cfg.fault_recovery = recovery;
                for t in 0..scale.trials() {
                    let seed = trial_seed(cfg.seed, t as u64);
                    requests.push(CellRequest::warm(
                        Arc::clone(&warms[&seed]),
                        cell_cfg.clone(),
                        sys.clone(),
                        seed,
                    ));
                }
                grid.push((label.to_string(), *mttf_s, sys.clone(), recovery));
            }
        }
    }
    let mut reports = run_cells(&requests).reports.into_iter();
    let mut cells = Vec::new();
    for (label, mttf_s, sys, recovery) in grid {
        // the first trial error (in trial order) turns the whole grid
        // cell into an error row, exactly like the sequential path did;
        // take_cell_reports drains the cell's full trial chunk either way,
        // keeping the shared stream aligned for the next cell
        let cell = match take_cell_reports(&mut reports, scale.trials()) {
            Ok(trial_reports) => {
                let avg = average_reports(&sys, trial_reports);
                FaultCell {
                    mttf: label,
                    mttf_s,
                    system: avg.system,
                    recovery,
                    outcome: "ok".to_string(),
                    makespan_s: avg.makespan_s,
                    node_crashes: avg.sample.node_crashes,
                    crash_task_kills: avg.sample.crash_task_kills,
                    lost_map_outputs: avg.sample.lost_map_outputs,
                }
            }
            Err(e) => FaultCell {
                mttf: label,
                mttf_s,
                system: sys.label().to_string(),
                recovery,
                outcome: e.to_string(),
                makespan_s: 0.0,
                node_crashes: 0,
                crash_task_kills: 0,
                lost_map_outputs: 0,
            },
        };
        cells.push(cell);
    }
    ExtFaults {
        benchmark: bench.name().to_string(),
        baseline_makespan_s: m,
        cells,
    }
}

/// Plain-text rendering.
pub fn render(e: &ExtFaults) -> String {
    let mut out = format!(
        "Extension — node crashes & recovery, {} (fault-free makespan {})\n\n",
        e.benchmark,
        table::secs(e.baseline_makespan_s)
    );
    let headers = [
        "mttf",
        "system",
        "recovery",
        "outcome",
        "makespan(s)",
        "crashes",
        "kills",
        "lost-outputs",
    ];
    let rows: Vec<Vec<String>> = e
        .cells
        .iter()
        .map(|c| {
            let outcome = if c.outcome == "ok" {
                c.outcome.clone()
            } else {
                // keep the table narrow; the JSON has the full error
                let mut s = c.outcome.clone();
                s.truncate(40);
                format!("error: {s}…")
            };
            vec![
                c.mttf.clone(),
                c.system.clone(),
                if c.recovery { "on" } else { "off" }.into(),
                outcome,
                if c.makespan_s > 0.0 {
                    table::secs(c.makespan_s)
                } else {
                    "—".into()
                },
                c.node_crashes.to_string(),
                c.crash_task_kills.to_string(),
                c.lost_map_outputs.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    out.push_str(&format!(
        "\nmakespan degradation at MTTF=M/4 (recovery on): HadoopV1 {:+.0}%, YARN {:+.0}%, SMapReduce {:+.0}%\n",
        e.degradation("low", "HadoopV1") * 100.0,
        e.degradation("low", "YARN") * 100.0,
        e.degradation("low", "SMapReduce") * 100.0,
    ));
    out.push_str(&format!(
        "faulted makespan, SMapReduce vs HadoopV1: {:.2}x at MTTF=M/2, {:.2}x at MTTF=M/4\n",
        e.cell("high", "SMapReduce", true).makespan_s / e.cell("high", "HadoopV1", true).makespan_s,
        e.cell("low", "SMapReduce", true).makespan_s / e.cell("low", "HadoopV1", true).makespan_s,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashes_recovered_and_recovery_off_errors_cleanly() {
        let e = run(Scale::Quick);
        assert_eq!(e.cells.len(), 18);
        // recovery-on rows always complete, crashes and all
        for c in e.cells.iter().filter(|c| c.recovery) {
            assert_eq!(c.outcome, "ok", "{}/{} should complete", c.mttf, c.system);
            if c.mttf != "none" {
                assert!(c.node_crashes > 0, "{}/{} saw no crash", c.mttf, c.system);
            }
        }
        // faults hurt: the low-MTTF makespan is no better than fault-free
        for sys in ["HadoopV1", "YARN", "SMapReduce"] {
            assert!(
                e.degradation("low", sys) >= 0.0,
                "{sys} got faster under crashes?"
            );
        }
        // at least one recovery-off faulted cell strands work and errors
        // with the clean NodeLost diagnosis instead of hanging
        assert!(
            e.cells
                .iter()
                .any(|c| !c.recovery && c.mttf != "none" && c.outcome.contains("lost")),
            "no recovery-off cell surfaced a NodeLost error"
        );
    }
}

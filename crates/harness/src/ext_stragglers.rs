//! Extension experiment — stragglers, failures and speculative execution.
//!
//! Not a paper figure. The paper's evaluation assumes a quiet, fault-free
//! cluster; real Hadoop 1.x deployments lean on *speculative execution* and
//! task retry. This experiment runs a map-heavy job in a hostile
//! environment (heavy service-time variance and a task failure rate) and
//! measures how much speculation recovers — and that SMapReduce's slot
//! management composes with it (the backup attempts run in the very slots
//! the manager opens up).

use crate::runner::{run_averaged, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use simgrid::time::SimDuration;
use workloads::Puma;

/// One (environment, system, speculation) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StragglerCell {
    pub environment: String,
    pub system: String,
    pub speculation: bool,
    pub map_time_s: f64,
    pub total_time_s: f64,
    pub speculative_attempts: u64,
    pub speculative_wins: u64,
    pub map_failures: u64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtStragglers {
    pub benchmark: String,
    pub cells: Vec<StragglerCell>,
}

impl ExtStragglers {
    pub fn cell(&self, environment: &str, system: &str, speculation: bool) -> &StragglerCell {
        self.cells
            .iter()
            .find(|c| {
                c.environment == environment && c.system == system && c.speculation == speculation
            })
            .unwrap_or_else(|| panic!("no cell {environment}/{system}/{speculation}"))
    }
}

fn environments() -> Vec<(&'static str, f64, f64, f64)> {
    // (label, jitter amplitude, map failure rate, degraded-task rate)
    vec![("quiet", 0.2, 0.0, 0.0), ("hostile", 0.35, 0.03, 0.03)]
}

/// Run the grid.
pub fn run(scale: Scale) -> ExtStragglers {
    let bench = Puma::HistogramRatings;
    let mut cells = Vec::new();
    for (env, jitter, failures, degraded) in environments() {
        for sys in [System::HadoopV1, System::SMapReduce] {
            for speculation in [false, true] {
                let mut cfg = EngineConfig::paper_default();
                cfg.jitter_amp = jitter;
                cfg.map_failure_rate = failures;
                cfg.straggler_rate = degraded;
                cfg.speculative_maps = speculation;
                cfg.speculation_min_runtime = SimDuration::from_secs(10);
                let job = bench.job(
                    0,
                    scale.input(bench.default_input_mb()),
                    30,
                    Default::default(),
                );
                let avg = run_averaged(&cfg, &[job], &sys, scale.trials()).expect("straggler run");
                cells.push(StragglerCell {
                    environment: env.to_string(),
                    system: avg.system,
                    speculation,
                    map_time_s: avg.map_time_s,
                    total_time_s: avg.total_time_s,
                    speculative_attempts: avg.sample.speculative_attempts,
                    speculative_wins: avg.sample.speculative_wins,
                    map_failures: avg.sample.map_failures,
                });
            }
        }
    }
    ExtStragglers {
        benchmark: bench.name().to_string(),
        cells,
    }
}

/// Plain-text rendering.
pub fn render(e: &ExtStragglers) -> String {
    let mut out = format!(
        "Extension — stragglers & speculative execution, {}\n\n",
        e.benchmark
    );
    let headers = [
        "env", "system", "spec", "map(s)", "total(s)", "backups", "wins", "failures",
    ];
    let rows: Vec<Vec<String>> = e
        .cells
        .iter()
        .map(|c| {
            vec![
                c.environment.clone(),
                c.system.clone(),
                if c.speculation { "on" } else { "off" }.into(),
                table::secs(c.map_time_s),
                table::secs(c.total_time_s),
                c.speculative_attempts.to_string(),
                c.speculative_wins.to_string(),
                c.map_failures.to_string(),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    let gain = |sys: &str| {
        let off = e.cell("hostile", sys, false).map_time_s;
        let on = e.cell("hostile", sys, true).map_time_s;
        (off / on - 1.0) * 100.0
    };
    out.push_str(&format!(
        "\nhostile-environment speculation gain: HadoopV1 {:+.0}% map throughput, SMapReduce {:+.0}%\n",
        gain("HadoopV1"),
        gain("SMapReduce"),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculation_helps_in_hostile_environment() {
        let e = run(Scale::Quick);
        assert_eq!(e.cells.len(), 8);
        // hostile without speculation must be slower than quiet
        let v1_quiet = e.cell("quiet", "HadoopV1", false).map_time_s;
        let v1_hostile = e.cell("hostile", "HadoopV1", false).map_time_s;
        assert!(
            v1_hostile > v1_quiet,
            "failures+variance must hurt: {v1_hostile} vs {v1_quiet}"
        );
        // speculation must claw some of it back
        let v1_spec = e.cell("hostile", "HadoopV1", true);
        assert!(
            v1_spec.map_time_s < v1_hostile,
            "speculation should shorten the straggler tail: {} vs {v1_hostile}",
            v1_spec.map_time_s
        );
        assert!(v1_spec.speculative_attempts > 0);
        // quiet runs inject no failures
        assert_eq!(e.cell("quiet", "SMapReduce", false).map_failures, 0);
        assert!(e.cell("hostile", "SMapReduce", false).map_failures > 0);
    }
}

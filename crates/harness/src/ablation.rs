//! Design-choice ablation sweeps.
//!
//! The paper fixes the slot manager's constants (10 % slow start, two
//! suspicion chances, "a time period") without sensitivity analysis; the
//! reproduction adds one. Each sweep varies a single `SmrConfig` knob on a
//! fixed workload and reports the resulting map/total time, so the choice
//! documented in DESIGN.md §5 can be checked rather than trusted:
//!
//! * **balance window** — too short re-introduces the bursty-shuffle
//!   misclassification, too long makes the manager sluggish;
//! * **decision period** — the adaptation-speed/οverhead trade-off;
//! * **balance bounds** — how wide the "balanced state" band is;
//! * **suspicion threshold** — one chance trigger-happily confirms wave
//!   noise as thrashing, many chances ride the thrashing region too long.

use crate::runner::{average_reports, run_cells, trial_seed, CellRequest, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use simgrid::time::SimDuration;
use smapreduce::SmrConfig;
use workloads::Puma;

/// One sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationPoint {
    pub knob: String,
    pub value: String,
    pub map_time_s: f64,
    pub total_time_s: f64,
}

/// All sweeps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablations {
    pub benchmark: String,
    pub points: Vec<AblationPoint>,
}

/// Run every sweep (WordCount: medium class, sensitive to all four knobs).
/// All 17 knob points × trials go through the bounded pool as one batch.
pub fn run(scale: Scale) -> Ablations {
    let bench = Puma::WordCount;
    let cfg = EngineConfig::paper_default();
    let mut specs: Vec<(String, String, SmrConfig)> = Vec::new();

    for secs in [6u64, 12, 24, 48, 96] {
        let smr = SmrConfig {
            balance_window: SimDuration::from_secs(secs),
            ..SmrConfig::default()
        };
        specs.push(("balance_window".into(), format!("{secs}s"), smr));
    }
    for secs in [3u64, 6, 12, 24] {
        let smr = SmrConfig {
            period: SimDuration::from_secs(secs),
            ..SmrConfig::default()
        };
        specs.push(("period".into(), format!("{secs}s"), smr));
    }
    for (lower, upper) in [(0.3, 0.7), (0.5, 0.88), (0.6, 0.95), (0.7, 1.05)] {
        let smr = SmrConfig {
            f_lower: lower,
            f_upper: upper,
            ..SmrConfig::default()
        };
        specs.push(("f_bounds".into(), format!("[{lower},{upper}]"), smr));
    }
    for k in [1u32, 2, 3, 5] {
        let smr = SmrConfig {
            suspect_threshold: k,
            ..SmrConfig::default()
        };
        specs.push(("suspect_threshold".into(), k.to_string(), smr));
    }

    let job = bench.job(
        0,
        scale.input(bench.default_input_mb()),
        30,
        Default::default(),
    );
    let trials = scale.trials();
    let requests: Vec<CellRequest> = specs
        .iter()
        .flat_map(|(_, _, smr)| {
            (0..trials).map(|t| {
                CellRequest::cold(
                    cfg.clone(),
                    vec![job.clone()],
                    System::SMapReduceWith(smr.clone()),
                    trial_seed(cfg.seed, t as u64),
                )
            })
        })
        .collect();
    let mut reports = run_cells(&requests).reports.into_iter();
    let points = specs
        .into_iter()
        .map(|(knob, value, smr)| {
            let chunk: Vec<_> = reports
                .by_ref()
                .take(trials)
                .collect::<Result<_, _>>()
                .expect("ablation run");
            let avg = average_reports(&System::SMapReduceWith(smr), chunk);
            AblationPoint {
                knob,
                value,
                map_time_s: avg.map_time_s,
                total_time_s: avg.total_time_s,
            }
        })
        .collect();
    Ablations {
        benchmark: bench.name().to_string(),
        points,
    }
}

/// Plain-text rendering.
pub fn render(a: &Ablations) -> String {
    let mut out = format!(
        "Design-choice ablations — {} under SMapReduce (defaults: window 48s, period 6s, bounds [0.5,0.88], threshold 2)\n\n",
        a.benchmark
    );
    let headers = ["knob", "value", "map(s)", "total(s)"];
    let rows: Vec<Vec<String>> = a
        .points
        .iter()
        .map(|p| {
            vec![
                p.knob.clone(),
                p.value.clone(),
                table::secs(p.map_time_s),
                table::secs(p.total_time_s),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_averaged;

    fn measure(
        cfg: &EngineConfig,
        bench: Puma,
        scale: Scale,
        knob: &str,
        value: String,
        smr: SmrConfig,
    ) -> AblationPoint {
        let job = bench.job(
            0,
            scale.input(bench.default_input_mb()),
            30,
            Default::default(),
        );
        let avg = run_averaged(cfg, &[job], &System::SMapReduceWith(smr), scale.trials())
            .expect("ablation run");
        AblationPoint {
            knob: knob.to_string(),
            value,
            map_time_s: avg.map_time_s,
            total_time_s: avg.total_time_s,
        }
    }

    #[test]
    fn sweep_covers_all_knobs() {
        // a miniature version of each sweep (single point per knob) to
        // keep the test cheap; the full sweep runs via `reproduce ablations`
        let cfg = EngineConfig::paper_default();
        let p = measure(
            &cfg,
            Puma::WordCount,
            Scale::Quick,
            "balance_window",
            "12s".into(),
            SmrConfig {
                balance_window: SimDuration::from_secs(12),
                ..SmrConfig::default()
            },
        );
        assert!(p.map_time_s > 0.0 && p.total_time_s >= p.map_time_s);
    }

    #[test]
    fn render_lists_knobs() {
        let a = Ablations {
            benchmark: "B".into(),
            points: vec![AblationPoint {
                knob: "period".into(),
                value: "6s".into(),
                map_time_s: 10.0,
                total_time_s: 12.0,
            }],
        };
        let s = render(&a);
        assert!(s.contains("period") && s.contains("6s"));
    }
}

//! `reproduce sweep-bench` — throughput benchmark of the batched sweep
//! executor. Drives a 1000+ cell grid — policy × fault plan × load ×
//! seed — through [`sweepengine::BatchedSweep`] and reports cells/sec,
//! peak resident cells, arena recycling counters, and prefix-cache dedup,
//! written to `BENCH_sweep.json`. A sampled subset of cells is re-run on
//! the legacy sequential path and byte-compared, so the throughput number
//! is only reported alongside proof the pooled results are identical.

use crate::runner::{prepare_warm, run_cells, run_warm, trial_seed, CellRequest, System};
use crate::scale::Scale;
use mapreduce::{EngineConfig, EngineState};
use serde::{Deserialize, Serialize};
use simgrid::cluster::NodeId;
use simgrid::time::{SimDuration, SimTime};
use simgrid::{FaultPlan, NodeFault};
use std::sync::Arc;
use sweepengine::PrefixCache;
use workloads::Puma;

/// The benchmark's measurements (the `BENCH_sweep.json` payload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepBench {
    /// Cells in the grid (policy × fault variant × load × seed).
    pub cells: usize,
    /// Pool workers the sweep ran on.
    pub workers: usize,
    /// Wall-clock seconds inside the pool (prepares and the equivalence
    /// re-runs excluded).
    pub wall_seconds: f64,
    pub cells_per_sec: f64,
    /// Most cells ever in flight at once — bounded by `workers`, unlike
    /// the old thread-per-cell fan-out where this equalled the grid size.
    pub peak_resident_cells: usize,
    /// Arena buffer regrowths after a cell was handed its scratch; flat
    /// after warm-up when recycling works.
    pub arena_growth_events: u64,
    /// Cells that drew scratch from a recycled arena (each pool worker's
    /// fresh first cell excluded).
    pub arena_cells_recycled: u64,
    /// `prepare` calls made while building the grid.
    pub prefix_prepares: usize,
    /// Distinct capsules resident after fingerprint dedup.
    pub prefix_capsules: usize,
    /// Prepares that collapsed onto an already-interned capsule.
    pub prefix_dedup_hits: u64,
    /// Cells re-run on the legacy sequential path for comparison.
    pub equivalence_sample: usize,
    /// Sampled cells whose pooled report differed byte-wise (must be 0).
    pub equivalence_mismatches: usize,
}

/// Seeds per (fault, load) grid point: 3 fault variants + fault-free, 4
/// loads, 3 systems × 21 seeds = 1008 cells.
const SEEDS: usize = 21;

/// Every `SAMPLE_STRIDE`-th cell is re-run sequentially and byte-compared.
const SAMPLE_STRIDE: usize = 43;

/// Input sizes (MB, before [`Scale`]) — the load axis.
const LOADS_MB: [f64; 4] = [512.0, 1024.0, 1536.0, 2048.0];

/// The fault-plan axis: fault-free plus three crash bursts of increasing
/// severity. Crash instants sit on the 3 s heartbeat grid and spare node
/// 0; downtimes are transient and past the 30 s expiry interval, so the
/// full detect → recover cycle runs in the cells the burst reaches.
fn fault_variants(workers: usize) -> Vec<FaultPlan> {
    let crash = |k: usize, secs: u64| {
        NodeFault::transient(
            NodeId(1 + (k % (workers - 1))),
            SimTime::from_secs(secs),
            SimDuration::from_secs(120),
        )
    };
    vec![
        FaultPlan::none(),
        FaultPlan::new(vec![crash(0, 60)]),
        FaultPlan::new(vec![crash(0, 30), crash(1, 60)]),
        FaultPlan::new(vec![crash(0, 15), crash(1, 30), crash(2, 45)]),
    ]
}

fn run_grid(scale: Scale, seeds: usize, stride: usize) -> SweepBench {
    let workers = 4usize;
    let base = EngineConfig::small_test(workers, 0);
    let bench = Puma::Grep;
    // Each (fault, load, seed) point captures its prefix independently —
    // the cache collapses them by content fingerprint, because the warm
    // capsule depends only on (load, seed): the fault plan binds at
    // resume, not at capture. 4 fault variants therefore share one
    // resident capsule per (load, seed).
    let prefixes = PrefixCache::new();
    let mut prepares = 0usize;
    let mut requests: Vec<CellRequest> = Vec::new();
    type SampledCell = (usize, Arc<EngineState>, EngineConfig, System, u64);
    let mut samples: Vec<SampledCell> = Vec::new();
    for plan in fault_variants(workers) {
        let mut cfg = base.clone();
        cfg.fault_plan = plan;
        for load_mb in LOADS_MB {
            let jobs = vec![bench.job(0, scale.input(load_mb), 8, SimTime::ZERO)];
            for t in 0..seeds {
                let seed = trial_seed(13, t as u64);
                prepares += 1;
                let warm =
                    prefixes.intern(prepare_warm(&base, jobs.clone(), seed).expect("prepare"));
                for sys in System::all() {
                    if requests.len().is_multiple_of(stride) {
                        samples.push((
                            requests.len(),
                            Arc::clone(&warm),
                            cfg.clone(),
                            sys.clone(),
                            seed,
                        ));
                    }
                    requests.push(CellRequest::warm(Arc::clone(&warm), cfg.clone(), sys, seed));
                }
            }
        }
    }
    let outcome = run_cells(&requests);
    let mut mismatches = 0usize;
    for (idx, warm, cfg, sys, seed) in &samples {
        let legacy = run_warm(warm, cfg, sys, *seed).expect("legacy cell completes");
        let pooled = outcome.reports[*idx]
            .as_ref()
            .expect("pooled cell completes");
        if serde_json::to_string(pooled).unwrap() != serde_json::to_string(&legacy).unwrap() {
            mismatches += 1;
        }
    }
    let stats = outcome.stats;
    SweepBench {
        cells: stats.cells,
        workers: stats.workers,
        wall_seconds: stats.wall_seconds,
        cells_per_sec: stats.cells_per_sec,
        peak_resident_cells: stats.peak_resident_cells,
        arena_growth_events: stats.arena_growth_events,
        arena_cells_recycled: stats.arena_cells_recycled,
        prefix_prepares: prepares,
        prefix_capsules: prefixes.capsules(),
        prefix_dedup_hits: prefixes.dedup_hits(),
        equivalence_sample: samples.len(),
        equivalence_mismatches: mismatches,
    }
}

/// Run the benchmark grid: 3 systems × 4 fault variants × 4 loads × 21
/// seeds = 1008 cells ([`Scale`] shrinks the inputs, never the grid).
pub fn run(scale: Scale) -> SweepBench {
    run_grid(scale, SEEDS, SAMPLE_STRIDE)
}

/// Plain-text rendering.
pub fn render(b: &SweepBench) -> String {
    format!(
        "batched sweep executor: {} cells over {} pool workers in {:.2}s ({:.1} cells/s)\n\
         peak resident cells {} (grid size {}), arena growth events {}, cells recycled {}\n\
         prefix cache: {} prepares -> {} resident capsules ({} dedup hits)\n\
         legacy-equivalence sample: {} cells re-run sequentially, {} mismatches\n",
        b.cells,
        b.workers,
        b.wall_seconds,
        b.cells_per_sec,
        b.peak_resident_cells,
        b.cells,
        b.arena_growth_events,
        b.arena_cells_recycled,
        b.prefix_prepares,
        b.prefix_capsules,
        b.prefix_dedup_hits,
        b.equivalence_sample,
        b.equivalence_mismatches,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_grid_is_equivalent_and_deduplicated() {
        // one seed per point: 3 systems × 4 faults × 4 loads = 48 cells —
        // the full 1008-cell grid runs via `reproduce sweep-bench`
        let b = run_grid(Scale::Quick, 1, 11);
        assert_eq!(b.cells, 48);
        assert_eq!(b.equivalence_mismatches, 0, "pooled != legacy");
        assert!(b.equivalence_sample >= 4);
        assert_eq!(b.prefix_prepares, 16);
        // 4 fault variants share each (load, seed) capsule
        assert_eq!(b.prefix_capsules, 4);
        assert_eq!(b.prefix_dedup_hits, 12);
        assert!(b.peak_resident_cells <= b.workers);
        assert!(b.cells_per_sec > 0.0);
        // every cell beyond each worker's fresh first drew recycled scratch
        assert!(b.arena_cells_recycled as usize >= b.cells - b.workers);
        assert!((b.arena_cells_recycled as usize) < b.cells);
    }

    #[test]
    fn render_reports_the_headline_numbers() {
        let b = SweepBench {
            cells: 1008,
            workers: 8,
            wall_seconds: 2.0,
            cells_per_sec: 504.0,
            peak_resident_cells: 8,
            arena_growth_events: 24,
            arena_cells_recycled: 1000,
            prefix_prepares: 336,
            prefix_capsules: 84,
            prefix_dedup_hits: 252,
            equivalence_sample: 24,
            equivalence_mismatches: 0,
        };
        let s = render(&b);
        assert!(s.contains("1008 cells") && s.contains("504.0 cells/s"));
        assert!(s.contains("84 resident capsules"));
        assert!(s.contains("0 mismatches"));
    }
}

//! # harness — regenerating every figure of the SMapReduce paper
//!
//! One module per figure; each produces a serialisable data structure and a
//! plain-text rendering, plus the §V-A headline claims in [`summary`]. The
//! `reproduce` binary drives them:
//!
//! ```text
//! cargo run --release -p harness --bin reproduce -- all
//! cargo run --release -p harness --bin reproduce -- fig3 --quick
//! ```
//!
//! | Module   | Paper figure | Content |
//! |----------|--------------|---------|
//! | [`fig1`] | Fig. 1 | thrashing curves (map throughput vs slot count) |
//! | [`fig3`] | Fig. 3 | 13 benchmarks × 3 systems execution times |
//! | [`fig4`] | Fig. 4 | HistogramMovies progress over time |
//! | [`fig5`] | Fig. 5 | map time vs configured map slots |
//! | [`fig6`] | Fig. 6 | throughput vs input size (50–250 GB) |
//! | [`fig7`] | Fig. 7 | thrashing-detection / slow-start ablations |
//! | [`fig89`]| Figs. 8–9 | 4 concurrent jobs, mean + last-finish |
//! | [`ext_hetero`] | (extension) | §VII future work: heterogeneous cluster |
//! | [`ablation`] | (extension) | design-choice sensitivity sweeps |
//! | [`ext_stragglers`] | (extension) | stragglers, failures, speculation |
//! | [`ext_fair`] | (extension) | FIFO vs Fair scheduling, mixed job sizes |
//! | [`ext_load`] | (extension) | sustained Poisson mixed load |
//! | [`ext_faults`] | (extension) | node crashes, recovery, blacklisting |
//! | [`model_check`] | (validation) | §III-B1 equations vs simulation |
//!
//! See `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub mod ablation;
pub mod bench_all;
pub mod capsule_bench;
pub mod capsules;
pub mod dashboard;
pub mod engine_bench;
pub mod ext_fair;
pub mod ext_faults;
pub mod ext_hetero;
pub mod ext_load;
pub mod ext_stragglers;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig89;
pub mod model_check;
pub mod output;
pub mod runner;
pub mod scale;
pub mod scale_bench;
pub mod serve_bench;
pub mod shapes;
pub mod summary;
pub mod sweep_bench;
pub mod table;
pub mod targets;

pub use runner::{
    run_averaged, run_cells, run_cells_with, run_comparison, run_once, AveragedRun, CellRequest,
    System,
};
pub use scale::Scale;

//! Checkpoint & replay wiring for `reproduce`: record a target's
//! representative run as a capsule stream, resume a capsule from disk,
//! and print replay fingerprints for the CI equivalence gate.
//!
//! Every target's *representative* run (the same configuration its
//! dashboard records — [`crate::dashboard::representative`]) can be:
//!
//! * **fingerprinted** ([`fingerprint_target`]) — run straight through,
//!   or snapshot-at-midpoint-then-resume, printing the auditor
//!   fingerprint of the final report. The two must print identical
//!   output; CI `cmp`s them.
//! * **recorded** ([`record_target`]) — run once with `--checkpoint-every`
//!   capture, writing the capsule stream into `--capsule-dir` for later
//!   `reproduce resume` / `reproduce bisect`.

use crate::dashboard;
use crate::runner::{self, System};
use crate::scale::Scale;
use checkpoint::SimSnapshot;
use mapreduce::auditor;
use simgrid::time::SimDuration;
use std::path::{Path, PathBuf};

/// How `fingerprint` obtains the report it fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Via {
    /// One uninterrupted run.
    Straight,
    /// Run with capsule capture, then re-run by resuming the midpoint
    /// capsule — the replay path the equivalence gate exercises.
    Resume,
}

impl Via {
    pub fn parse(s: &str) -> Result<Via, String> {
        match s {
            "straight" => Ok(Via::Straight),
            "resume" => Ok(Via::Resume),
            other => Err(format!("--via must be straight|resume, got {other}")),
        }
    }
}

/// Capture period for the fingerprint replay path: long enough that quick
/// runs take a handful of capsules, and a multiple of every config's
/// sample period.
fn fingerprint_every() -> SimDuration {
    SimDuration::from_secs(30)
}

/// Fingerprint a target's representative run. The printed line is
/// via-independent by construction: if the replay path diverges from the
/// straight path, the fingerprints (and the CI `cmp`) differ.
///
/// With `capsule_dir` set, the resume path writes the full capsule
/// stream there (the straight path writes nothing) — on a gate failure
/// that stream is the artifact to bisect.
pub fn fingerprint_target(
    target: &str,
    scale: Scale,
    via: Via,
    capsule_dir: Option<&Path>,
) -> Result<String, String> {
    let (mut cfg, jobs, system, _) =
        dashboard::representative(target, scale).map_err(|e| e.to_string())?;
    // fingerprints cover counters; event recording only bloats capsules
    cfg.record_events = false;
    let seed = cfg.seed;
    let report = match via {
        Via::Straight => runner::run_once(&cfg, jobs, &system, seed).map_err(|e| e.to_string())?,
        Via::Resume => {
            let (_, capsules) =
                runner::run_once_with_snapshots(&cfg, jobs, &system, seed, fingerprint_every())
                    .map_err(|e| e.to_string())?;
            if let Some(dir) = capsule_dir {
                checkpoint::write_stream(dir, &capsules).map_err(|e| e.to_string())?;
            }
            let mid = capsules[capsules.len() / 2].clone();
            runner::resume_once(mid, &system).map_err(|e| e.to_string())?
        }
    };
    Ok(format!(
        "{target} {} seed {} fingerprint {:#018x}\n",
        report.policy,
        seed,
        auditor::fingerprint(&report)
    ))
}

/// Outcome of recording a target's representative run as a capsule
/// stream.
pub struct RecordOutcome {
    pub dir: PathBuf,
    pub capsules: usize,
    pub every_s: f64,
    pub makespan_s: f64,
    pub fingerprint: u64,
}

/// Run a target's representative configuration with capsule capture every
/// `every`, writing the stream into `dir`.
pub fn record_target(
    target: &str,
    scale: Scale,
    every: SimDuration,
    dir: &Path,
) -> Result<RecordOutcome, String> {
    let (mut cfg, jobs, system, _) =
        dashboard::representative(target, scale).map_err(|e| e.to_string())?;
    cfg.record_events = false;
    let seed = cfg.seed;
    let (report, capsules) = runner::run_once_with_snapshots(&cfg, jobs, &system, seed, every)
        .map_err(|e| e.to_string())?;
    let paths = checkpoint::write_stream(dir, &capsules).map_err(|e| e.to_string())?;
    Ok(RecordOutcome {
        dir: dir.to_path_buf(),
        capsules: paths.len(),
        every_s: every.as_secs_f64(),
        makespan_s: report.makespan().as_secs_f64(),
        fingerprint: auditor::fingerprint(&report),
    })
}

/// Resume a capsule file to completion. The policy is reconstructed from
/// the capsule's recorded name (default configuration); the run is
/// audited like any other.
pub fn resume_capsule(path: &Path) -> Result<String, String> {
    let snap: SimSnapshot = checkpoint::load(path).map_err(|e| e.to_string())?;
    let name = snap.state.policy_name().to_string();
    if name.is_empty() {
        return Err(format!(
            "{}: capsule is an unbound warm-start capture (Engine::prepare); \
             it has no policy to resume under",
            path.display()
        ));
    }
    let system = System::from_label(&name)
        .ok_or_else(|| format!("{}: unknown policy {name:?}", path.display()))?;
    let from_s = snap.state.at().as_secs_f64();
    let report = runner::resume_once(snap.state, &system).map_err(|e| e.to_string())?;
    Ok(format!(
        "resumed {} from t={from_s:.0}s under {}\n\
         makespan {:.1}s, fingerprint {:#018x}\n",
        path.display(),
        report.policy,
        report.makespan().as_secs_f64(),
        auditor::fingerprint(&report)
    ))
}

/// Render a bisection outcome for the terminal.
pub fn render_divergence(div: &Option<checkpoint::Divergence>) -> String {
    match div {
        None => "capsule streams are byte-identical\n".to_string(),
        Some(d) => {
            let mut out = format!(
                "first divergent checkpoint: index {} at t={:.0}s\n  a: {}\n  b: {}\n",
                d.index,
                d.at.as_secs_f64(),
                d.path_a.display(),
                d.path_b.display()
            );
            const SHOWN: usize = 20;
            for diff in d.diffs.iter().take(SHOWN) {
                out.push_str(&format!("  {}: {} != {}\n", diff.path, diff.a, diff.b));
            }
            if d.diffs.len() > SHOWN {
                out.push_str(&format!(
                    "  … and {} more differing fields\n",
                    d.diffs.len() - SHOWN
                ));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smr-capsules-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn straight_and_resume_fingerprints_agree() {
        let a = fingerprint_target("fig1", Scale::Quick, Via::Straight, None).expect("straight");
        let dir = tmp("fp");
        let b = fingerprint_target("fig1", Scale::Quick, Via::Resume, Some(&dir)).expect("resume");
        assert_eq!(a, b, "replay fingerprint diverged from straight run");
        assert!(
            !checkpoint::list_capsules(&dir).expect("list").is_empty(),
            "resume path wrote its capsule stream"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorded_stream_resumes_and_bisects_clean() {
        let dir_a = tmp("rec-a");
        let dir_b = tmp("rec-b");
        let every = SimDuration::from_secs(30);
        let ra = record_target("ext-faults", Scale::Quick, every, &dir_a).expect("record a");
        let rb = record_target("ext-faults", Scale::Quick, every, &dir_b).expect("record b");
        assert_eq!(ra.fingerprint, rb.fingerprint, "recording is deterministic");
        assert!(ra.capsules >= 2, "{} capsules", ra.capsules);
        // identical reruns bisect to no divergence
        let div = checkpoint::bisect_dirs(&dir_a, &dir_b).expect("bisect");
        assert!(div.is_none(), "{}", render_divergence(&div));
        // any capsule resumes to the recorded fingerprint
        let capsules = checkpoint::list_capsules(&dir_a).expect("list");
        let (_, mid_path) = &capsules[capsules.len() / 2];
        let summary = resume_capsule(mid_path).expect("resume");
        assert!(
            summary.contains(&format!("{:#018x}", ra.fingerprint)),
            "resume fingerprint missing from: {summary}"
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn unknown_via_is_rejected() {
        assert!(Via::parse("sideways").is_err());
        assert_eq!(Via::parse("straight").unwrap(), Via::Straight);
        assert_eq!(Via::parse("resume").unwrap(), Via::Resume);
    }
}

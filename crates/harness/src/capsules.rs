//! Checkpoint & replay wiring for `reproduce`: record a target's
//! representative run as a capsule stream, resume a capsule from disk,
//! and print replay fingerprints for the CI equivalence gate.
//!
//! Every target's *representative* run (the same configuration its
//! dashboard records — [`crate::dashboard::representative`]) can be:
//!
//! * **fingerprinted** ([`fingerprint_target`]) — run straight through,
//!   or snapshot-at-midpoint-then-resume, printing the auditor
//!   fingerprint of the final report. The two must print identical
//!   output; CI `cmp`s them. With the hash trace enabled, the replay
//!   path additionally verifies the resumed run's *per-step* state
//!   hashes against the straight run's — a divergence is pinned to the
//!   exact step it first happened rather than discovered at the end.
//! * **recorded** ([`record_target`]) — run once with `--checkpoint-every`
//!   capture, writing the capsule stream (JSON or binary) plus the
//!   per-step hash trace into `--capsule-dir` for later
//!   `reproduce resume` / `reproduce bisect`.

use crate::dashboard;
use crate::runner::{self, System};
use crate::scale::Scale;
use checkpoint::{CapsuleFormat, SimSnapshot};
use mapreduce::auditor;
use simgrid::time::SimDuration;
use std::path::{Path, PathBuf};

/// How `fingerprint` obtains the report it fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Via {
    /// One uninterrupted run.
    Straight,
    /// Run with capsule capture, then re-run by resuming the midpoint
    /// capsule — the replay path the equivalence gate exercises.
    Resume,
}

impl Via {
    pub fn parse(s: &str) -> Result<Via, String> {
        match s {
            "straight" => Ok(Via::Straight),
            "resume" => Ok(Via::Resume),
            other => Err(format!("--via must be straight|resume, got {other}")),
        }
    }
}

/// Capture period for the fingerprint replay path: long enough that quick
/// runs take a handful of capsules, and a multiple of every config's
/// sample period.
fn fingerprint_every() -> SimDuration {
    SimDuration::from_secs(30)
}

/// Fingerprint a target's representative run. The printed output is
/// via-independent by construction: if the replay path diverges from the
/// straight path, the fingerprints (and the CI `cmp`) differ — and with
/// `hash_trace`, a per-step divergence fails the resume invocation
/// outright, naming the first divergent step.
///
/// With `capsule_dir` set, the resume path writes the full capsule
/// stream there in `format` (the straight path writes nothing) — on a
/// gate failure that stream is the artifact to bisect.
pub fn fingerprint_target(
    target: &str,
    scale: Scale,
    via: Via,
    capsule_dir: Option<&Path>,
    format: CapsuleFormat,
    hash_trace: bool,
) -> Result<String, String> {
    let (mut cfg, jobs, system, _) =
        dashboard::representative(target, scale).map_err(|e| e.to_string())?;
    // fingerprints cover counters; event recording only bloats capsules
    cfg.record_events = false;
    let seed = cfg.seed;
    let (report, trace) = match (via, hash_trace) {
        (Via::Straight, false) => (
            runner::run_once(&cfg, jobs, &system, seed).map_err(|e| e.to_string())?,
            None,
        ),
        (Via::Straight, true) => {
            // snapshot capture is observational (proven by the resume
            // equivalence gate), so tracing through the snapshotting run
            // keeps this line identical to the plain straight line
            let (report, _, trace) = runner::run_once_with_snapshots_traced(
                &cfg,
                jobs,
                &system,
                seed,
                fingerprint_every(),
            )
            .map_err(|e| e.to_string())?;
            (report, Some(trace))
        }
        (Via::Resume, _) => {
            let (_, capsules, straight_trace) = runner::run_once_with_snapshots_traced(
                &cfg,
                jobs,
                &system,
                seed,
                fingerprint_every(),
            )
            .map_err(|e| e.to_string())?;
            if capsules.is_empty() {
                return Err(format!(
                    "{target}: straight run captured no capsules to resume from \
                     (snapshot period {}s longer than the run?)",
                    fingerprint_every().as_secs_f64()
                ));
            }
            if let Some(dir) = capsule_dir {
                checkpoint::write_stream_as(dir, &capsules, format).map_err(|e| e.to_string())?;
                checkpoint::write_hash_trace(dir, &straight_trace).map_err(|e| e.to_string())?;
            }
            let mid = capsules[capsules.len() / 2].clone();
            if hash_trace {
                let (report, resumed_trace) =
                    runner::resume_once_traced(mid, &system).map_err(|e| e.to_string())?;
                let (compared, mismatch) =
                    checkpoint::compare_traces(&straight_trace, &resumed_trace);
                if let Some(m) = mismatch {
                    return Err(format!(
                        "{target}: resumed run diverged from the straight run at step {} \
                         (t={}ms): straight {:#018x} != resumed {:#018x} \
                         ({compared} steps agreed before it)",
                        m.step, m.at_ms, m.straight, m.resumed
                    ));
                }
                if compared == 0 {
                    return Err(format!(
                        "{target}: resume verified zero steps — midpoint capsule \
                         resumed at the end of the run"
                    ));
                }
                // verified step-for-step, so the straight trace digest is
                // the resumed run's digest too: both lines cmp equal
                (report, Some(straight_trace))
            } else {
                (
                    runner::resume_once(mid, &system).map_err(|e| e.to_string())?,
                    None,
                )
            }
        }
    };
    let mut out = format!(
        "{target} {} seed {} fingerprint {:#018x}\n",
        report.policy,
        seed,
        auditor::fingerprint(&report)
    );
    if let Some(trace) = trace {
        out.push_str(&format!(
            "{target} hash-trace {} steps digest {:#018x}\n",
            trace.len(),
            checkpoint::trace_digest(&trace)
        ));
    }
    Ok(out)
}

/// Outcome of recording a target's representative run as a capsule
/// stream.
pub struct RecordOutcome {
    pub dir: PathBuf,
    pub capsules: usize,
    pub every_s: f64,
    pub makespan_s: f64,
    pub fingerprint: u64,
    /// Steps in the hash trace written alongside the capsules.
    pub hash_points: usize,
}

/// Run a target's representative configuration with capsule capture every
/// `every`, writing the stream (in `format`) and the per-step hash trace
/// into `dir`.
pub fn record_target(
    target: &str,
    scale: Scale,
    every: SimDuration,
    dir: &Path,
    format: CapsuleFormat,
) -> Result<RecordOutcome, String> {
    let (mut cfg, jobs, system, _) =
        dashboard::representative(target, scale).map_err(|e| e.to_string())?;
    cfg.record_events = false;
    let seed = cfg.seed;
    let (report, capsules, trace) =
        runner::run_once_with_snapshots_traced(&cfg, jobs, &system, seed, every)
            .map_err(|e| e.to_string())?;
    let paths = checkpoint::write_stream_as(dir, &capsules, format).map_err(|e| e.to_string())?;
    checkpoint::write_hash_trace(dir, &trace).map_err(|e| e.to_string())?;
    Ok(RecordOutcome {
        dir: dir.to_path_buf(),
        capsules: paths.len(),
        every_s: every.as_secs_f64(),
        makespan_s: report.makespan().as_secs_f64(),
        fingerprint: auditor::fingerprint(&report),
        hash_points: trace.len(),
    })
}

/// Resume a capsule file to completion. The policy is reconstructed from
/// the capsule's recorded name (default configuration); the run is
/// audited like any other.
pub fn resume_capsule(path: &Path) -> Result<String, String> {
    let snap: SimSnapshot = checkpoint::load(path).map_err(|e| e.to_string())?;
    let name = snap.state.policy_name().to_string();
    if name.is_empty() {
        return Err(format!(
            "{}: capsule is an unbound warm-start capture (Engine::prepare); \
             it has no policy to resume under",
            path.display()
        ));
    }
    let system = System::from_label(&name)
        .ok_or_else(|| format!("{}: unknown policy {name:?}", path.display()))?;
    let from_s = snap.state.at().as_secs_f64();
    let report = runner::resume_once(snap.state, &system).map_err(|e| e.to_string())?;
    Ok(format!(
        "resumed {} from t={from_s:.0}s under {}\n\
         makespan {:.1}s, fingerprint {:#018x}\n",
        path.display(),
        report.policy,
        report.makespan().as_secs_f64(),
        auditor::fingerprint(&report)
    ))
}

/// Render a bisection outcome for the terminal.
pub fn render_divergence(div: &Option<checkpoint::Divergence>) -> String {
    match div {
        None => "capsule streams are equivalent\n".to_string(),
        Some(d) if d.stream_truncated => {
            let mut out = format!(
                "streams identical until one ends early: pair {} at t={:.0}s\n  a: {}\n  b: {}\n",
                d.index,
                d.at.as_secs_f64(),
                d.path_a.display(),
                d.path_b.display()
            );
            for diff in &d.diffs {
                out.push_str(&format!("  {}: {} != {}\n", diff.path, diff.a, diff.b));
            }
            out
        }
        Some(d) => {
            let mut out = format!(
                "first divergent checkpoint: index {} at t={:.0}s\n  a: {}\n  b: {}\n",
                d.index,
                d.at.as_secs_f64(),
                d.path_a.display(),
                d.path_b.display()
            );
            const SHOWN: usize = 20;
            for diff in d.diffs.iter().take(SHOWN) {
                out.push_str(&format!("  {}: {} != {}\n", diff.path, diff.a, diff.b));
            }
            if d.diffs.len() > SHOWN {
                out.push_str(&format!(
                    "  … and {} more differing fields\n",
                    d.diffs.len() - SHOWN
                ));
            }
            out
        }
    }
}

/// Render a hash-trace bisection outcome for the terminal.
pub fn render_trace_divergence(div: &Option<checkpoint::TraceDivergence>) -> String {
    match div {
        None => "hash traces are identical\n".to_string(),
        Some(d) => {
            let mut out = format!(
                "hash traces diverge at step {} (t={:.0}s): {:#018x} != {:#018x}\n",
                d.step,
                d.at.as_secs_f64(),
                d.hash_a,
                d.hash_b
            );
            match &d.capsule_diff {
                Some(pair) => out.push_str(&render_divergence(&Some(pair.clone()))),
                None => out.push_str("  (no capsule pair captured at or after that step)\n"),
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smr-capsules-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn straight_and_resume_fingerprints_agree() {
        let a = fingerprint_target(
            "fig1",
            Scale::Quick,
            Via::Straight,
            None,
            CapsuleFormat::Json,
            false,
        )
        .expect("straight");
        let dir = tmp("fp");
        let b = fingerprint_target(
            "fig1",
            Scale::Quick,
            Via::Resume,
            Some(&dir),
            CapsuleFormat::Json,
            false,
        )
        .expect("resume");
        assert_eq!(a, b, "replay fingerprint diverged from straight run");
        assert!(
            !checkpoint::list_capsules(&dir).expect("list").is_empty(),
            "resume path wrote its capsule stream"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hash_traced_fingerprints_agree_per_step() {
        let a = fingerprint_target(
            "fig1",
            Scale::Quick,
            Via::Straight,
            None,
            CapsuleFormat::Binary,
            true,
        )
        .expect("straight");
        assert!(a.contains("hash-trace"), "digest line missing: {a}");
        let dir = tmp("fp-hash");
        let b = fingerprint_target(
            "fig1",
            Scale::Quick,
            Via::Resume,
            Some(&dir),
            CapsuleFormat::Binary,
            true,
        )
        .expect("resume verified every post-resume step");
        assert_eq!(a, b, "hash-trace output diverged between vias");
        assert!(
            dir.join(checkpoint::HASH_TRACE_FILE).exists(),
            "resume path wrote the hash trace"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorded_stream_resumes_and_bisects_clean() {
        let dir_a = tmp("rec-a");
        let dir_b = tmp("rec-b");
        let every = SimDuration::from_secs(30);
        // one stream JSON, the other binary: same run, and both the
        // mixed-format bisect and the hash-trace bisect must see through
        // the encoding difference
        let ra = record_target(
            "ext-faults",
            Scale::Quick,
            every,
            &dir_a,
            CapsuleFormat::Json,
        )
        .expect("record a");
        let rb = record_target(
            "ext-faults",
            Scale::Quick,
            every,
            &dir_b,
            CapsuleFormat::Binary,
        )
        .expect("record b");
        assert_eq!(ra.fingerprint, rb.fingerprint, "recording is deterministic");
        assert!(ra.capsules >= 2, "{} capsules", ra.capsules);
        assert_eq!(ra.hash_points, rb.hash_points);
        assert!(ra.hash_points > 0, "hash trace recorded");
        // identical reruns bisect to no divergence, whatever the encoding
        let div = checkpoint::bisect_dirs(&dir_a, &dir_b).expect("bisect");
        assert!(div.is_none(), "{}", render_divergence(&div));
        let tdiv = checkpoint::bisect_hash_traces(&dir_a, &dir_b).expect("trace bisect");
        assert!(tdiv.is_none(), "{}", render_trace_divergence(&tdiv));
        // any capsule resumes to the recorded fingerprint
        let capsules = checkpoint::list_capsules(&dir_a).expect("list");
        let (_, mid_path) = capsules
            .get(capsules.len() / 2)
            .expect("recorded stream has capsules");
        let summary = resume_capsule(mid_path).expect("resume");
        assert!(
            summary.contains(&format!("{:#018x}", ra.fingerprint)),
            "resume fingerprint missing from: {summary}"
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn unknown_via_is_rejected() {
        assert!(Via::parse("sideways").is_err());
        assert_eq!(Via::parse("straight").unwrap(), Via::Straight);
        assert_eq!(Via::parse("resume").unwrap(), Via::Resume);
    }
}

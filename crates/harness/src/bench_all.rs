//! `reproduce bench-all` — aggregate every `results/BENCH_*.json` into one
//! summary.
//!
//! Each bench target writes its own JSON (`BENCH_engine.json`,
//! `BENCH_sweep.json`, `BENCH_scale.json`, `BENCH_capsule.json`,
//! `BENCH_serve.json`, …). This target scans the output directory for all
//! of them, lifts every top-level scalar metric, and writes
//! `BENCH_summary.json` plus a markdown table (`BENCH_summary.md`) — one
//! place to diff a whole bench suite between commits.

use serde_json::Value;
use std::path::{Path, PathBuf};

#[derive(Debug)]
pub struct BenchSummary {
    /// `(bench name, metrics)` per input file, sorted by name.
    pub benches: Vec<(String, Vec<(String, Value)>)>,
    pub skipped: Vec<String>,
    pub json_path: PathBuf,
    pub md_path: PathBuf,
}

/// A value worth a row in the summary: scalars verbatim; everything else
/// summarised by shape.
fn scalarize(v: &Value) -> Option<Value> {
    match v {
        Value::Null | Value::Object(_) => None,
        Value::Array(items) => Some(Value::String(format!("[{} items]", items.len()))),
        scalar => Some(scalar.clone()),
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::F64(f) => format!("{f:.3}"),
        other => serde_json::to_string(other).unwrap_or_default(),
    }
}

/// Scan `out` for `BENCH_*.json` (excluding the summary itself), lift
/// their top-level scalar metrics, and write the combined JSON + markdown.
pub fn run(out: &Path) -> Result<BenchSummary, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(out)
        .map_err(|e| format!("read {}: {e}", out.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                n.starts_with("BENCH_") && n.ends_with(".json") && n != "BENCH_summary.json"
            })
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no BENCH_*.json under {} — run the bench targets first \
             (engine-bench, sweep-bench, scale-bench, capsule-bench, serve-bench)",
            out.display()
        ));
    }

    let mut benches: Vec<(String, Vec<(String, Value)>)> = Vec::new();
    let mut skipped = Vec::new();
    for path in &files {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("?")
            .trim_start_matches("BENCH_")
            .to_string();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                skipped.push(format!("{}: {e}", path.display()));
                continue;
            }
        };
        let value = match serde_json::parse_value(&text) {
            Ok(v) => v,
            Err(e) => {
                skipped.push(format!("{}: {e}", path.display()));
                continue;
            }
        };
        let Value::Object(fields) = value else {
            skipped.push(format!("{}: top level is not an object", path.display()));
            continue;
        };
        let metrics: Vec<(String, Value)> = fields
            .iter()
            .filter_map(|(k, v)| scalarize(v).map(|s| (k.clone(), s)))
            .collect();
        benches.push((name, metrics));
    }

    // combined JSON
    let mut summary = Value::Object(Vec::new());
    for (name, metrics) in &benches {
        summary.set(
            name,
            Value::Object(
                metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            ),
        );
    }
    let json_path = out.join("BENCH_summary.json");
    std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;

    // markdown table
    let md_path = out.join("BENCH_summary.md");
    std::fs::write(&md_path, render_markdown(&benches)).map_err(|e| e.to_string())?;

    Ok(BenchSummary {
        benches,
        skipped,
        json_path,
        md_path,
    })
}

fn render_markdown(benches: &[(String, Vec<(String, Value)>)]) -> String {
    let mut md = String::from("# Bench summary\n\n");
    md.push_str("| bench | metric | value |\n|---|---|---|\n");
    for (name, metrics) in benches {
        for (k, v) in metrics {
            md.push_str(&format!("| {name} | {k} | {} |\n", render_value(v)));
        }
    }
    md
}

pub fn render(s: &BenchSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "bench-all: {} bench file(s) aggregated\n",
        s.benches.len()
    ));
    for (name, metrics) in &s.benches {
        out.push_str(&format!("  {name}: {} metric(s)\n", metrics.len()));
    }
    for skip in &s.skipped {
        out.push_str(&format!("  skipped {skip}\n"));
    }
    out.push_str(&format!(
        "  wrote {} and {}\n",
        s.json_path.display(),
        s.md_path.display()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_scalar_metrics_and_writes_both_outputs() {
        let dir = std::env::temp_dir().join(format!("bench-all-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_alpha.json"),
            r#"{"ticks": 100, "rate": 2.5, "name": "x", "nested": {"a": 1}, "list": [1,2]}"#,
        )
        .unwrap();
        std::fs::write(dir.join("BENCH_beta.json"), r#"{"ok": true}"#).unwrap();
        std::fs::write(dir.join("BENCH_bad.json"), "not json").unwrap();
        std::fs::write(dir.join("other.json"), r#"{"ignored": 1}"#).unwrap();

        let s = run(&dir).unwrap();
        assert_eq!(s.benches.len(), 2);
        assert_eq!(s.skipped.len(), 1);
        let (name, metrics) = &s.benches[0];
        assert_eq!(name, "alpha");
        // nested objects are dropped, arrays summarised, scalars kept
        assert!(metrics.iter().any(|(k, _)| k == "ticks"));
        assert!(!metrics.iter().any(|(k, _)| k == "nested"));
        let md = std::fs::read_to_string(&s.md_path).unwrap();
        assert!(md.contains("| alpha | ticks | 100 |"));
        assert!(md.contains("| beta | ok | true |"));
        let json = std::fs::read_to_string(&s.json_path).unwrap();
        let v = serde_json::parse_value(&json).unwrap();
        assert!(v.get("alpha").and_then(|a| a.get("rate")).is_some());

        // the summary file itself is excluded on re-runs
        let s2 = run(&dir).unwrap();
        assert_eq!(s2.benches.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

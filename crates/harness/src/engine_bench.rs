//! Fixed-vs-adaptive engine comparison: the same paper-scale workload run
//! under both stepping modes, timed, with the step counts that explain
//! the difference. `reproduce engine-bench` renders this and writes
//! `BENCH_engine.json`.

use crate::runner::{run_once, System};
use crate::scale::Scale;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use simgrid::time::{SimTime, SteppingMode};
use workloads::Puma;

/// One stepping mode's measurements over the benchmark workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeRow {
    pub mode: String,
    /// Engine steps summed over all runs.
    pub steps: u64,
    /// Simulated seconds summed over all runs.
    pub sim_seconds: f64,
    /// Wall-clock seconds for the whole workload.
    pub wall_seconds: f64,
    /// steps / sim_seconds — the cost of advancing one simulated second.
    pub steps_per_sim_second: f64,
}

/// The full comparison plus the two acceptance ratios.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineBench {
    pub fixed: ModeRow,
    pub adaptive: ModeRow,
    /// fixed.steps / adaptive.steps (target: >= 5).
    pub step_ratio: f64,
    /// fixed.wall_seconds / adaptive.wall_seconds (target: >= 2).
    pub speedup: f64,
}

/// Input size per job (MB): the same 2 GB miniature the `substrate`
/// criterion bench uses for its end-to-end engine measurement, so this
/// comparison and that bench describe the same workload.
const INPUT_MB: f64 = 2.0 * 1024.0;

/// The workload both modes run: one map-heavy and one reduce-heavy PUMA
/// benchmark on the paper testbed, under the slot manager (the system
/// whose reallocations exercise the event horizon hardest). Full scale
/// repeats the pair to stabilise the wall-clock measurement.
fn workload() -> Vec<(EngineConfig, mapreduce::JobSpec)> {
    [Puma::Grep, Puma::Terasort]
        .into_iter()
        .map(|bench| {
            let cfg = EngineConfig::paper_default();
            let job = bench.job(0, INPUT_MB, 16, SimTime::ZERO);
            (cfg, job)
        })
        .collect()
}

fn run_mode(mode: SteppingMode, scale: Scale) -> ModeRow {
    let repeats = match scale {
        Scale::Full => 5,
        Scale::Quick => 1,
    };
    let start = std::time::Instant::now();
    let mut steps = 0u64;
    let mut sim_ms = 0u64;
    for _ in 0..repeats {
        for (mut cfg, job) in workload() {
            cfg.tick.mode = mode;
            let report = run_once(&cfg, vec![job], &System::SMapReduce, cfg.seed)
                .expect("bench run completes");
            steps += report.steps;
            sim_ms += report
                .jobs
                .iter()
                .map(|j| j.finished_at.as_millis())
                .max()
                .unwrap_or(0);
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let sim_seconds = sim_ms as f64 / 1000.0;
    ModeRow {
        mode: match mode {
            SteppingMode::Fixed => "fixed".to_string(),
            SteppingMode::Adaptive => "adaptive".to_string(),
        },
        steps,
        sim_seconds,
        wall_seconds: wall,
        steps_per_sim_second: if sim_seconds > 0.0 {
            steps as f64 / sim_seconds
        } else {
            0.0
        },
    }
}

/// Run the comparison. Note: meaningless if `runner::set_engine_mode` has
/// pinned a mode in this process (the pin would override both rows), so
/// the `reproduce` binary rejects `engine-bench` combined with `--engine`.
pub fn run(scale: Scale) -> EngineBench {
    let fixed = run_mode(SteppingMode::Fixed, scale);
    let adaptive = run_mode(SteppingMode::Adaptive, scale);
    let step_ratio = if adaptive.steps > 0 {
        fixed.steps as f64 / adaptive.steps as f64
    } else {
        0.0
    };
    let speedup = if adaptive.wall_seconds > 0.0 {
        fixed.wall_seconds / adaptive.wall_seconds
    } else {
        0.0
    };
    EngineBench {
        fixed,
        adaptive,
        step_ratio,
        speedup,
    }
}

pub fn render(b: &EngineBench) -> String {
    let mut out = String::new();
    out.push_str("engine stepping: fixed 100 ms ticks vs adaptive event horizon\n");
    out.push_str("(Grep + Terasort on the paper testbed, SMapReduce policy)\n\n");
    out.push_str(&format!(
        "{:<10} {:>12} {:>12} {:>12} {:>16}\n",
        "mode", "steps", "sim (s)", "wall (s)", "steps/sim-s"
    ));
    for row in [&b.fixed, &b.adaptive] {
        out.push_str(&format!(
            "{:<10} {:>12} {:>12.1} {:>12.3} {:>16.1}\n",
            row.mode, row.steps, row.sim_seconds, row.wall_seconds, row.steps_per_sim_second
        ));
    }
    out.push_str(&format!(
        "\nstep ratio (fixed/adaptive): {:.1}x   wall speedup: {:.1}x\n",
        b.step_ratio, b.speedup
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_shows_step_reduction() {
        let b = run(Scale::Quick);
        assert!(b.fixed.steps > 0 && b.adaptive.steps > 0);
        assert!(
            b.step_ratio >= 5.0,
            "adaptive must take >=5x fewer steps (ratio {:.2})",
            b.step_ratio
        );
        // Fixed mode detects every completion on the 100 ms grid, so each
        // serial phase transition finishes up to a tick late and the delays
        // accumulate along the map->shuffle->sort->reduce chain; adaptive
        // lands on the exact event times. The spans therefore differ by a
        // bounded quantization error, not by model drift.
        let rel = (b.fixed.sim_seconds - b.adaptive.sim_seconds).abs() / b.fixed.sim_seconds;
        assert!(rel < 0.10, "sim spans diverged ({rel:.3})");
    }
}

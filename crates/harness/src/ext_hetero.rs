//! Extension experiment — heterogeneous clusters (the paper's §VII future
//! work; no corresponding figure exists in the paper).
//!
//! Testbed: 8 of the paper's 16-core workers plus 8 weak workers (8 cores,
//! half the memory, a slower disk). Compared: HadoopV1 and YARN (static /
//! capacity, both blind to the mix), the paper's uniform SMapReduce (one
//! target for every tracker — its stated homogeneity assumption), and the
//! capacity-proportional [`smapreduce::hetero`] extension.
//!
//! Expected shape: the uniform manager still beats the baselines (the
//! aggregate signal finds a workable compromise) but over-drives the weak
//! nodes; the capacity-proportional variant recovers most of that loss.

use crate::runner::{run_averaged, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use simgrid::cluster::ClusterSpec;
use simgrid::node::NodeSpec;
use workloads::Puma;

/// One system's outcome on the mixed cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroCell {
    pub system: String,
    pub map_time_s: f64,
    pub total_time_s: f64,
    pub throughput: f64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtHetero {
    pub benchmark: String,
    pub strong_nodes: usize,
    pub weak_nodes: usize,
    pub cells: Vec<HeteroCell>,
}

impl ExtHetero {
    pub fn cell(&self, system: &str) -> &HeteroCell {
        self.cells
            .iter()
            .find(|c| c.system == system)
            .unwrap_or_else(|| panic!("no cell {system}"))
    }
}

/// The weak machine class: half the cores and memory, a slower disk.
pub fn weak_worker() -> NodeSpec {
    NodeSpec {
        cores: 8.0,
        mem_mb: 14.0 * 1024.0,
        disk_bw: 140.0,
        ..NodeSpec::paper_worker()
    }
}

/// The mixed 8+8 testbed.
pub fn mixed_testbed() -> ClusterSpec {
    ClusterSpec::mixed(8, 8, weak_worker())
}

/// Systems compared (the paper trio + the extension).
pub fn systems() -> [System; 4] {
    [
        System::HadoopV1,
        System::Yarn,
        System::SMapReduce,
        System::SMapReduceHetero,
    ]
}

/// Run the experiment.
pub fn run(scale: Scale) -> ExtHetero {
    let bench = Puma::HistogramRatings;
    let mut cfg = EngineConfig::paper_default();
    cfg.cluster = mixed_testbed();
    let mut cells = Vec::new();
    for sys in systems() {
        let job = bench.job(
            0,
            scale.input(bench.default_input_mb()),
            30,
            Default::default(),
        );
        let avg = run_averaged(&cfg, &[job], &sys, scale.trials()).expect("hetero run");
        cells.push(HeteroCell {
            system: avg.system,
            map_time_s: avg.map_time_s,
            total_time_s: avg.total_time_s,
            throughput: avg.throughput,
        });
    }
    ExtHetero {
        benchmark: bench.name().to_string(),
        strong_nodes: 8,
        weak_nodes: 8,
        cells,
    }
}

/// Plain-text rendering.
pub fn render(e: &ExtHetero) -> String {
    let mut out = format!(
        "Extension — heterogeneous cluster ({} strong + {} weak workers), {}\n\n",
        e.strong_nodes, e.weak_nodes, e.benchmark
    );
    let headers = ["system", "map(s)", "total(s)", "thpt(MB/s)"];
    let rows: Vec<Vec<String>> = e
        .cells
        .iter()
        .map(|c| {
            vec![
                c.system.clone(),
                table::secs(c.map_time_s),
                table::secs(c.total_time_s),
                format!("{:.1}", c.throughput),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    out.push_str(&format!(
        "\ncapacity-proportional targets vs uniform SMapReduce: {} throughput\n",
        table::pct_delta(
            e.cell("SMapReduce-hetero").throughput,
            e.cell("SMapReduce").throughput
        )
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_extension_beats_uniform_on_mixed_cluster() {
        let e = run(Scale::Quick);
        assert_eq!(e.cells.len(), 4);
        let thpt = |s: &str| e.cell(s).throughput;
        // At this reduced scale the *uniform* manager may not yet beat the
        // baselines on a mixed cluster — the misfit between one target and
        // two machine classes is exactly what the extension fixes, so the
        // assertions pin the extension's edge. (At full scale, `reproduce
        // ext-hetero` shows uniform SMR between YARN and hetero.)
        assert!(
            thpt("SMapReduce-hetero") > thpt("HadoopV1"),
            "hetero {} must beat V1 {}",
            thpt("SMapReduce-hetero"),
            thpt("HadoopV1")
        );
        assert!(
            thpt("SMapReduce-hetero") > thpt("SMapReduce"),
            "capacity-proportional {} must beat uniform {} on a mixed cluster",
            thpt("SMapReduce-hetero"),
            thpt("SMapReduce")
        );
    }

    #[test]
    fn weak_worker_is_weaker() {
        let w = weak_worker();
        let s = NodeSpec::paper_worker();
        assert!(w.cores < s.cores && w.mem_mb < s.mem_mb && w.disk_bw < s.disk_bw);
        assert!(!mixed_testbed().is_homogeneous());
    }
}

//! Figure 4 — progress percentage over time for the HistogramMovies
//! benchmark (total progress runs to 200 %: map 100 % + reduce 100 %).
//!
//! Expected shape: all three systems start at the same slope; SMapReduce's
//! curve steepens as the slot manager converges on the optimal slot count,
//! while HadoopV1 and YARN stay straight; every curve has a sharp turn just
//! above the 100 % mark (the barrier).

use crate::runner::{run_once, System};
use crate::scale::Scale;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use workloads::Puma;

/// One system's progress curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProgressCurve {
    pub system: String,
    /// `(seconds, progress-percent 0..200)`.
    pub points: Vec<(f64, f64)>,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    pub benchmark: String,
    pub curves: Vec<ProgressCurve>,
}

/// Run the experiment (single seed: the figure shows one trace per system).
pub fn run(scale: Scale) -> Fig4 {
    let cfg = EngineConfig::paper_default();
    let bench = Puma::HistogramMovies;
    let curves = System::all()
        .iter()
        .map(|sys| {
            let job = bench.job(
                0,
                scale.input(bench.default_input_mb()),
                30,
                Default::default(),
            );
            let report = run_once(&cfg, vec![job], sys, cfg.seed).expect("fig4 run");
            let points = report.jobs[0]
                .progress
                .thinned(120)
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64(), v))
                .collect();
            ProgressCurve {
                system: sys.label().to_string(),
                points,
            }
        })
        .collect();
    Fig4 {
        benchmark: bench.name().to_string(),
        curves,
    }
}

/// Plain-text rendering: one column block per system.
pub fn render(f: &Fig4) -> String {
    let mut out = format!(
        "Figure 4 — Progress percentage over time, {} (map% + reduce%, 0-200)\n\n",
        f.benchmark
    );
    for c in &f.curves {
        out.push_str(&crate::table::render_series(
            &c.system,
            "t(s)",
            "progress(%)",
            &c.points,
        ));
        out.push('\n');
    }
    // comparative summary: time to reach 100% (barrier region) and 200%
    for c in &f.curves {
        let reach = |level: f64| {
            c.points
                .iter()
                .find(|p| p.1 >= level)
                .map(|p| p.0)
                .unwrap_or(f64::NAN)
        };
        out.push_str(&format!(
            "{}: 100% at {:.0}s, done at {:.0}s\n",
            c.system,
            reach(100.0),
            reach(199.0)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_curves_shape() {
        let f = run(Scale::Quick);
        assert_eq!(f.curves.len(), 3);
        for c in &f.curves {
            let last = c.points.last().expect("non-empty").1;
            assert!(last > 195.0, "{} ends at {last}", c.system);
            for w in c.points.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-6, "{} must be monotone", c.system);
            }
        }
        // SMapReduce finishes no later than HadoopV1 on this map-heavy job
        let done = |name: &str| {
            f.curves
                .iter()
                .find(|c| c.system == name)
                .expect("curve present")
                .points
                .last()
                .expect("non-empty")
                .0
        };
        assert!(
            done("SMapReduce") <= done("HadoopV1"),
            "SMR {} vs V1 {}",
            done("SMapReduce"),
            done("HadoopV1")
        );
    }

    #[test]
    fn render_mentions_systems() {
        let f = Fig4 {
            benchmark: "B".into(),
            curves: vec![ProgressCurve {
                system: "HadoopV1".into(),
                points: vec![(0.0, 0.0), (10.0, 100.0), (20.0, 200.0)],
            }],
        };
        let s = render(&f);
        assert!(s.contains("HadoopV1"));
        assert!(s.contains("100% at 10s"));
    }
}

//! The single registry of `reproduce` targets.
//!
//! Every target the binary dispatches is declared here once, with a
//! one-line description. Unknown-target errors print this generated list
//! instead of a hand-written usage string, so the error message can never
//! go stale against the dispatcher again — a dispatcher arm without a
//! registry row fails the coverage test in this module.

/// One dispatchable `reproduce` target.
pub struct Target {
    pub name: &'static str,
    pub desc: &'static str,
    /// Takes extra positional operands (subcommand-style targets).
    pub operands: &'static str,
}

const fn t(name: &'static str, desc: &'static str) -> Target {
    Target {
        name,
        desc,
        operands: "",
    }
}

const fn sub(name: &'static str, operands: &'static str, desc: &'static str) -> Target {
    Target {
        name,
        desc,
        operands,
    }
}

/// Every target, in help-display order.
pub const TARGETS: &[Target] = &[
    t("all", "every paper figure plus ext-hetero (the default)"),
    t(
        "fig1",
        "motivating example: static splits vs workload phases",
    ),
    t("fig3", "makespan vs slot configuration across systems"),
    t("fig4", "per-phase slot occupancy timelines"),
    t("fig5", "makespan across PUMA workloads"),
    t("fig6", "scaling with cluster size"),
    t("fig7", "slot-manager decision trace"),
    t("fig8", "job-mix throughput comparison"),
    t("fig9", "slot-change counts under the manager"),
    t("headline", "§V-A headline claims only"),
    t("ablations", "slot-manager knob sweeps"),
    t("model-check", "§III-B1 queueing-model check"),
    t("ext-hetero", "extension: heterogeneous nodes"),
    t("ext-stragglers", "extension: straggler mitigation"),
    t("ext-fair", "extension: fair-share scheduling"),
    t("ext-load", "extension: background load"),
    t("ext-faults", "extension: node crash/rejoin faults"),
    t(
        "engine-bench",
        "fixed vs adaptive stepping benchmark -> BENCH_engine.json",
    ),
    t(
        "sweep-bench",
        "batched multi-cell sweep benchmark -> BENCH_sweep.json",
    ),
    t(
        "scale-bench",
        "16..1024-node scale trajectory -> BENCH_scale.json",
    ),
    t(
        "capsule-bench",
        "checkpoint encode/decode benchmark -> BENCH_capsule.json",
    ),
    t(
        "serve-bench",
        "realtime service under multi-tenant load -> BENCH_serve.json",
    ),
    t(
        "bench-all",
        "aggregate results/BENCH_*.json -> BENCH_summary.{json,md}",
    ),
    sub(
        "serve",
        "[ADDR]",
        "realtime service speaking NDJSON over TCP (default 127.0.0.1:7700)",
    ),
    sub(
        "fingerprint",
        "<target>",
        "print a target's representative-run auditor fingerprint",
    ),
    sub(
        "resume",
        "<CAPSULE.{json,bin}>",
        "resume a capsule to completion",
    ),
    sub(
        "bisect",
        "<DIR_A> <DIR_B>",
        "first divergent checkpoint of two capsule streams",
    ),
];

/// The generated target list, for unknown-target errors and `--help`.
pub fn render_list() -> String {
    let width = TARGETS
        .iter()
        .map(|t| t.name.len() + 1 + t.operands.len())
        .max()
        .unwrap_or(0);
    let mut out = String::from("targets:\n");
    for t in TARGETS {
        let head = if t.operands.is_empty() {
            t.name.to_string()
        } else {
            format!("{} {}", t.name, t.operands)
        };
        out.push_str(&format!("  {head:width$}  {}\n", t.desc));
    }
    out
}

/// The error message for an unrecognised target: nearest-name hint (plain
/// prefix/containment match) plus the full generated list.
pub fn unknown(name: &str) -> String {
    let mut msg = format!("unknown target: {name}\n");
    let near: Vec<&str> = TARGETS
        .iter()
        .map(|t| t.name)
        .filter(|t| t.contains(name) || name.contains(t))
        .collect();
    if !near.is_empty() {
        msg.push_str(&format!("did you mean {}?\n", near.join(" or ")));
    }
    msg.push('\n');
    msg.push_str(&render_list());
    msg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_mentions_every_target_once() {
        let list = render_list();
        for t in TARGETS {
            assert!(list.contains(t.name), "{} missing from list", t.name);
            assert!(!t.desc.is_empty());
        }
        let mut names: Vec<&str> = TARGETS.iter().map(|t| t.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TARGETS.len(), "duplicate target names");
    }

    #[test]
    fn unknown_suggests_near_misses() {
        let msg = unknown("fig");
        assert!(msg.contains("unknown target: fig"));
        assert!(msg.contains("did you mean"));
        assert!(msg.contains("fig1"));
        let msg = unknown("zzz");
        assert!(!msg.contains("did you mean"));
        assert!(msg.contains("serve-bench"));
    }
}

//! `reproduce scale-bench` — the dense-substrate scaling trajectory.
//!
//! Runs one full synthetic job (PUMA Grep under the SMapReduce slot
//! manager) on clusters of {16, 64, 256, 1024} paper-spec nodes and
//! reports, per point: engine steps, wall time, **ns per step per node**,
//! steps/sec, and the engine-arena capacity footprint (the peak-memory
//! proxy). The workload *weak-scales*: input grows proportionally to the
//! cluster ([`BLOCKS_PER_NODE`] HDFS blocks per node) while the reduce
//! count stays fixed, so a per-step cost linear in the cluster size shows
//! up as a *flat* ns/step-per-node trajectory. The CI gate holds the
//! 1024-node point to ≤ [`LINEARITY_BOUND`]× the 64-node point — a
//! hash-map substrate or an accidentally quadratic per-node loop fails it.

use crate::runner::{run_once_in, System};
use crate::scale::Scale;
use mapreduce::EngineArena;
use serde::{Deserialize, Serialize};
use simgrid::time::SimTime;
use workloads::Puma;

/// One cluster size's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalePoint {
    pub nodes: usize,
    /// Job input (MB) — proportional to `nodes` (weak scaling).
    pub input_mb: f64,
    /// Map tasks the input splits into.
    pub maps: u64,
    /// Engine steps of one run (identical across repeats: deterministic).
    pub steps: u64,
    /// Simulated seconds to job completion.
    pub sim_seconds: f64,
    /// Wall-clock seconds of the best repeat.
    pub wall_seconds: f64,
    pub ns_per_step: f64,
    /// The trajectory headline: flat under weak scaling when every
    /// per-node hot path is O(nodes) per step.
    pub ns_per_step_per_node: f64,
    pub steps_per_sec: f64,
    /// Engine-arena capacity footprint after the runs (peak RSS proxy for
    /// the recycled per-node buffer families).
    pub arena_bytes: usize,
    /// Arena buffer regrowths across the repeats — bounded (first-run
    /// growth only) when reset-in-place recycling works.
    pub arena_growth_events: u64,
}

/// The full trajectory plus the CI gate inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleBench {
    pub points: Vec<ScalePoint>,
    /// ns/step-per-node at 1024 nodes over the same at 64 nodes (the
    /// near-linearity gate ratio; 0 when either point is absent).
    pub ratio_1024_vs_64: f64,
    /// The gate bound the ratio is held to.
    pub linearity_bound: f64,
}

/// The swept cluster sizes.
pub const NODE_GRID: [usize; 4] = [16, 64, 256, 1024];

/// HDFS blocks of job input per node before [`Scale`] shrinking.
const BLOCKS_PER_NODE: f64 = 2.0;

/// Reduce tasks — deliberately *fixed* across cluster sizes: shuffle
/// bookkeeping is O(reduces × nodes) per step, so growing reduces with
/// the cluster would make the per-step cost quadratic by construction.
const REDUCES: usize = 32;

/// Timed repeats per point (best wall time wins; steps are deterministic).
/// Small clusters finish in single-digit milliseconds, so they get extra
/// repeats — the 64-node point is the gate ratio's denominator and must
/// not be a one-shot ms-scale measurement on a noisy CI runner.
fn repeats(nodes: usize) -> usize {
    if nodes <= 64 {
        5
    } else {
        2
    }
}

/// CI bound on [`ScaleBench::ratio_1024_vs_64`].
pub const LINEARITY_BOUND: f64 = 1.5;

/// Run one cluster size: [`repeats`] identical runs through a shared
/// recycled arena, best wall time reported.
pub fn run_point(scale: Scale, nodes: usize) -> ScalePoint {
    let cfg = scale.engine(nodes);
    let input_mb = scale.input(nodes as f64 * BLOCKS_PER_NODE * cfg.block_mb);
    let mut arena = EngineArena::new();
    let mut best_wall = f64::INFINITY;
    let mut steps = 0u64;
    let mut sim_seconds = 0.0;
    let mut maps = 0u64;
    for _ in 0..repeats(nodes) {
        let job = Puma::Grep.job(0, input_mb, REDUCES, SimTime::ZERO);
        let start = std::time::Instant::now();
        let report = run_once_in(&cfg, vec![job], &System::SMapReduce, cfg.seed, &mut arena)
            .expect("scale-bench run completes");
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
        steps = report.steps;
        sim_seconds = report.jobs[0].finished_at.as_secs_f64();
        maps = report.jobs[0].num_maps as u64;
    }
    let ns = best_wall * 1e9;
    ScalePoint {
        nodes,
        input_mb,
        maps,
        steps,
        sim_seconds,
        wall_seconds: best_wall,
        ns_per_step: ns / steps as f64,
        ns_per_step_per_node: ns / steps as f64 / nodes as f64,
        steps_per_sec: steps as f64 / best_wall,
        arena_bytes: arena.approx_bytes(),
        arena_growth_events: arena.growth_events(),
    }
}

/// Fold a trajectory into the benchmark payload (gate ratio included).
pub fn from_points(points: Vec<ScalePoint>) -> ScaleBench {
    let per_node = |n: usize| {
        points
            .iter()
            .find(|p| p.nodes == n)
            .map(|p| p.ns_per_step_per_node)
    };
    let ratio_1024_vs_64 = match (per_node(64), per_node(1024)) {
        (Some(a), Some(b)) if a > 0.0 => b / a,
        _ => 0.0,
    };
    ScaleBench {
        points,
        ratio_1024_vs_64,
        linearity_bound: LINEARITY_BOUND,
    }
}

/// Run the full {16, 64, 256, 1024} trajectory.
pub fn run(scale: Scale) -> ScaleBench {
    from_points(NODE_GRID.map(|n| run_point(scale, n)).to_vec())
}

/// Plain-text rendering.
pub fn render(b: &ScaleBench) -> String {
    let mut out = String::new();
    out.push_str("dense-substrate scale trajectory (weak scaling: input ∝ nodes, reduces fixed)\n");
    out.push_str(&format!(
        "{:>6} {:>10} {:>6} {:>9} {:>9} {:>11} {:>13} {:>11} {:>11}\n",
        "nodes",
        "input MB",
        "maps",
        "steps",
        "wall (s)",
        "steps/s",
        "ns/step/node",
        "arena KiB",
        "growths"
    ));
    for p in &b.points {
        out.push_str(&format!(
            "{:>6} {:>10.0} {:>6} {:>9} {:>9.3} {:>11.0} {:>13.1} {:>11} {:>11}\n",
            p.nodes,
            p.input_mb,
            p.maps,
            p.steps,
            p.wall_seconds,
            p.steps_per_sec,
            p.ns_per_step_per_node,
            p.arena_bytes / 1024,
            p.arena_growth_events
        ));
    }
    out.push_str(&format!(
        "\nns/step-per-node growth 64 -> 1024 nodes: {:.2}x (gate: <= {:.1}x)\n",
        b.ratio_1024_vs_64, b.linearity_bound
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_1024_node_point_completes_a_full_job() {
        // the acceptance floor: a complete synthetic job on 1024 nodes in
        // test-compatible time (Quick shrinks the input, never the cluster)
        let p = run_point(Scale::Quick, 1024);
        assert_eq!(p.nodes, 1024);
        assert!(p.maps >= 512, "weak scaling: ~0.6 blocks/node at Quick");
        assert!(p.steps > 0 && p.sim_seconds > 0.0);
        assert!(p.ns_per_step_per_node > 0.0);
        assert!(p.arena_bytes > 0);
    }

    #[test]
    fn trajectory_folds_the_gate_ratio() {
        let mk = |nodes: usize, nspn: f64| ScalePoint {
            nodes,
            input_mb: 0.0,
            maps: 0,
            steps: 1,
            sim_seconds: 1.0,
            wall_seconds: 1.0,
            ns_per_step: nspn * nodes as f64,
            ns_per_step_per_node: nspn,
            steps_per_sec: 1.0,
            arena_bytes: 1,
            arena_growth_events: 0,
        };
        let b = from_points(vec![mk(64, 100.0), mk(1024, 130.0)]);
        assert!((b.ratio_1024_vs_64 - 1.3).abs() < 1e-12);
        assert!(b.ratio_1024_vs_64 <= b.linearity_bound);
        // missing endpoints degrade to 0, never divide by zero
        assert_eq!(from_points(vec![mk(16, 50.0)]).ratio_1024_vs_64, 0.0);
        let s = render(&b);
        assert!(s.contains("1024") && s.contains("1.30x"));
    }

    #[test]
    fn small_points_are_deterministic_in_steps() {
        let a = run_point(Scale::Quick, 16);
        let b = run_point(Scale::Quick, 16);
        assert_eq!(a.steps, b.steps, "repeat runs must step identically");
        assert_eq!(a.maps, b.maps);
        assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
    }
}

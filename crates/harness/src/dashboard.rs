//! Flight-recorder dashboards: converting a [`RunReport`] into the
//! renderer-agnostic [`DashboardSpec`] and producing one representative
//! recorded run per `reproduce` target.
//!
//! Figure sweeps run hundreds of engine instances with event recording
//! off, so the dashboard is built from one *representative* run per
//! target — the single configuration the figure is really about — re-run
//! with `record_events` on. The resulting HTML (see
//! [`telemetry::dashboard`]) shows the per-node Gantt of task attempts,
//! slot-occupancy and utilization timelines, the policy's decision
//! markers, the counter table and the auditor's verdict.

use crate::runner::{run_once, System};
use crate::scale::Scale;
use mapreduce::auditor::{audit, AuditSetup};
use mapreduce::events::Event;
use mapreduce::{EngineConfig, JobSpec, RunReport, Violation};
use simgrid::cluster::NodeId;
use simgrid::error::SimError;
use simgrid::metrics::TimeSeries;
use simgrid::time::{SimDuration, SimTime};
use simgrid::{FaultPlan, NodeFault};
use std::collections::HashMap;
use telemetry::dashboard::{
    render_dashboard, Chart, DashboardSpec, Lane, Marker, Series, SpanKind, SpanOutcome, TaskSpan,
};
use workloads::Puma;

/// Run the target's representative configuration (events on), audit it,
/// and render the dashboard HTML.
pub fn render_for_target(target: &str, scale: Scale) -> Result<String, SimError> {
    let (cfg, jobs, system, subtitle) = representative(target, scale)?;
    let setup = AuditSetup::from_config(&cfg);
    let seed = cfg.seed;
    let report = run_once(&cfg, jobs, &system, seed)?;
    let violations = audit(&report, &setup);
    let spec = spec_from_run(
        &format!("{target} — cluster flight recorder"),
        &subtitle,
        &report,
        &violations,
    );
    Ok(render_dashboard(&spec))
}

/// The single recorded run a target's dashboard shows — also the run the
/// checkpoint tooling (`reproduce fingerprint`, `--checkpoint-every`)
/// captures and replays, so "the representative run of fig1" means the
/// same configuration everywhere.
pub fn representative(
    target: &str,
    scale: Scale,
) -> Result<(EngineConfig, Vec<JobSpec>, System, String), SimError> {
    let mut cfg = EngineConfig::paper_default();
    cfg.record_events = true;
    match target {
        // Fig. 1 is HadoopV1 static thrashing curves; record the paper's
        // lead benchmark at the default slot configuration.
        "fig1" => {
            let bench = Puma::Terasort;
            let input = scale.input(bench.default_input_mb());
            let job = bench.job(0, input, 30, Default::default());
            let subtitle = format!(
                "HadoopV1 · {} {:.0} GB · {} workers · seed {}",
                bench.name(),
                input / 1024.0,
                cfg.cluster.workers,
                cfg.seed
            );
            Ok((cfg, vec![job], System::HadoopV1, subtitle))
        }
        // The fault extension: SMapReduce riding out two transient node
        // crashes placed inside the fault-free window.
        "ext-faults" => {
            let bench = Puma::HistogramRatings;
            cfg.rereplication_rate = 400.0;
            let input = scale.input(bench.default_input_mb());
            let job = || bench.job(0, input, 30, Default::default());
            let baseline = {
                let mut quiet = cfg.clone();
                quiet.record_events = false;
                run_once(&quiet, vec![job()], &System::SMapReduce, quiet.seed)?
            };
            let m = baseline.makespan().as_secs_f64();
            // snap crash instants onto the 3 s heartbeat grid, as the
            // fault sweep does
            let snap = |t: f64| ((t * 1000.0) as u64 / 3000).max(1) * 3000;
            cfg.fault_plan = FaultPlan::new(vec![
                NodeFault::transient(
                    NodeId(1),
                    SimTime::from_millis(snap(m / 3.0)),
                    SimDuration::from_secs(120),
                ),
                NodeFault::transient(
                    NodeId(2),
                    SimTime::from_millis(snap(2.0 * m / 3.0)),
                    SimDuration::from_secs(120),
                ),
            ]);
            let subtitle = format!(
                "SMapReduce · {} {:.0} GB · 2 transient node crashes · seed {}",
                bench.name(),
                input / 1024.0,
                cfg.seed
            );
            Ok((cfg, vec![job()], System::SMapReduce, subtitle))
        }
        // Any other target gets the paper's default workload under the
        // paper's system.
        _ => {
            let bench = Puma::HistogramRatings;
            let input = scale.input(bench.default_input_mb());
            let job = bench.job(0, input, 30, Default::default());
            let subtitle = format!(
                "SMapReduce · {} {:.0} GB · seed {}",
                bench.name(),
                input / 1024.0,
                cfg.seed
            );
            Ok((cfg, vec![job], System::SMapReduce, subtitle))
        }
    }
}

/// Convert one audited run into the dashboard's generic spec.
pub fn spec_from_run(
    title: &str,
    subtitle: &str,
    report: &RunReport,
    violations: &[Violation],
) -> DashboardSpec {
    let t_end = report
        .jobs
        .iter()
        .map(|j| j.finished_at.as_secs_f64())
        .fold(0.0, f64::max);

    DashboardSpec {
        title: title.to_string(),
        subtitle: subtitle.to_string(),
        t_end,
        lanes: build_lanes(report, t_end),
        markers: build_markers(report),
        charts: build_charts(report),
        counters: report
            .counters
            .iter()
            .filter(|&(_, v)| v != 0.0)
            .map(|(c, v)| (c.name().to_string(), fmt_counter(v)))
            .collect(),
        audited: true,
        violations: violations.iter().map(|v| v.to_string()).collect(),
    }
}

/// One Gantt lane per node, with task attempts reconstructed from the
/// event log and crash windows as outages.
fn build_lanes(report: &RunReport, t_end: f64) -> Vec<Lane> {
    let nodes = report.node_utilization.len();
    let mut lanes: Vec<Lane> = (0..nodes)
        .map(|n| Lane {
            label: format!("node {n}"),
            ..Lane::default()
        })
        .collect();
    if report.events.is_empty() {
        return lanes;
    }

    // Map attempts are keyed by (task, node): a task can retry on another
    // node, and a speculative sibling runs concurrently elsewhere.
    let mut open_maps: HashMap<(mapreduce::task::MapTaskId, usize), Vec<f64>> = HashMap::new();
    // One reduce attempt per partition at a time: (node, phase start,
    // still shuffling).
    let mut open_reduces: HashMap<mapreduce::task::ReduceTaskId, (usize, f64, bool)> =
        HashMap::new();
    let mut down_since: HashMap<usize, f64> = HashMap::new();

    let close_map = |lanes: &mut Vec<Lane>,
                     open: &mut HashMap<(mapreduce::task::MapTaskId, usize), Vec<f64>>,
                     at: SimTime,
                     id: mapreduce::task::MapTaskId,
                     node: NodeId,
                     outcome: SpanOutcome| {
        if let Some(starts) = open.get_mut(&(id, node.0)) {
            if let Some(start) = starts.pop() {
                lanes[node.0].spans.push(TaskSpan {
                    start,
                    end: at.as_secs_f64(),
                    kind: SpanKind::Map,
                    label: format!("j{} m{}", id.job.0, id.index),
                    outcome,
                });
            }
        }
    };

    for ev in report.events.events() {
        match *ev {
            Event::MapLaunched { at, id, node, .. } => {
                open_maps
                    .entry((id, node.0))
                    .or_default()
                    .push(at.as_secs_f64());
            }
            Event::MapCompleted { at, id, node, .. } => close_map(
                &mut lanes,
                &mut open_maps,
                at,
                id,
                node,
                SpanOutcome::Completed,
            ),
            Event::MapKilled { at, id, node } => close_map(
                &mut lanes,
                &mut open_maps,
                at,
                id,
                node,
                SpanOutcome::Killed,
            ),
            Event::MapFailed { at, id, node } => close_map(
                &mut lanes,
                &mut open_maps,
                at,
                id,
                node,
                SpanOutcome::Failed,
            ),
            Event::MapDiscarded { at, id, node } => close_map(
                &mut lanes,
                &mut open_maps,
                at,
                id,
                node,
                SpanOutcome::Discarded,
            ),
            Event::ReduceLaunched { at, id, node } => {
                open_reduces.insert(id, (node.0, at.as_secs_f64(), true));
            }
            Event::ShuffleCompleted { at, id, .. } => {
                if let Some((node, start, shuffling)) = open_reduces.get_mut(&id) {
                    lanes[*node].spans.push(TaskSpan {
                        start: *start,
                        end: at.as_secs_f64(),
                        kind: SpanKind::Shuffle,
                        label: format!("j{} r{}", id.job.0, id.partition),
                        outcome: SpanOutcome::Completed,
                    });
                    *start = at.as_secs_f64();
                    *shuffling = false;
                }
            }
            Event::ReduceCompleted { at, id, .. } => {
                if let Some((node, start, _)) = open_reduces.remove(&id) {
                    lanes[node].spans.push(TaskSpan {
                        start,
                        end: at.as_secs_f64(),
                        kind: SpanKind::Reduce,
                        label: format!("j{} r{}", id.job.0, id.partition),
                        outcome: SpanOutcome::Completed,
                    });
                }
            }
            Event::ReduceKilled { at, id, .. } => {
                if let Some((node, start, shuffling)) = open_reduces.remove(&id) {
                    lanes[node].spans.push(TaskSpan {
                        start,
                        end: at.as_secs_f64(),
                        kind: if shuffling {
                            SpanKind::Shuffle
                        } else {
                            SpanKind::Reduce
                        },
                        label: format!("j{} r{}", id.job.0, id.partition),
                        outcome: SpanOutcome::Killed,
                    });
                }
            }
            Event::NodeCrashed { at, node } => {
                down_since.insert(node.0, at.as_secs_f64());
            }
            Event::NodeRejoined { at, node } => {
                if let Some(since) = down_since.remove(&node.0) {
                    lanes[node.0].outages.push((since, at.as_secs_f64()));
                }
            }
            _ => {}
        }
    }
    // Anything still open when the log ends (shouldn't happen in a
    // completed run, but the dashboard should draw it, not drop it).
    for ((id, node), starts) in open_maps {
        for start in starts {
            lanes[node].spans.push(TaskSpan {
                start,
                end: t_end,
                kind: SpanKind::Map,
                label: format!("j{} m{}", id.job.0, id.index),
                outcome: SpanOutcome::Running,
            });
        }
    }
    for (id, (node, start, shuffling)) in open_reduces {
        lanes[node].spans.push(TaskSpan {
            start,
            end: t_end,
            kind: if shuffling {
                SpanKind::Shuffle
            } else {
                SpanKind::Reduce
            },
            label: format!("j{} r{}", id.job.0, id.partition),
            outcome: SpanOutcome::Running,
        });
    }
    for (node, since) in down_since {
        lanes[node].outages.push((since, t_end));
    }
    for lane in &mut lanes {
        lane.spans
            .sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite span times"));
    }
    lanes
}

fn build_markers(report: &RunReport) -> Vec<Marker> {
    report
        .decisions
        .iter()
        .map(|d| Marker {
            t: d.at.as_secs_f64(),
            label: match d.f {
                Some(f) => format!(
                    "{} (f={:.2}, Rs={:.1}, Rm={:.1}) → {}m/{}r",
                    d.decision, f, d.rs, d.rm, d.map_target, d.reduce_target
                ),
                None => format!(
                    "{} (Rs={:.1}, Rm={:.1}) → {}m/{}r",
                    d.decision, d.rs, d.rm, d.map_target, d.reduce_target
                ),
            },
        })
        .collect()
}

fn build_charts(report: &RunReport) -> Vec<Chart> {
    let mut charts = Vec::new();
    if !report.map_slot_series.is_empty() || !report.reduce_slot_series.is_empty() {
        charts.push(Chart {
            title: "Cluster slot targets".into(),
            unit: "slots".into(),
            y_max: None,
            show_markers: true,
            series: vec![
                Series {
                    label: "map target".into(),
                    points: ts_points(&report.map_slot_series),
                },
                Series {
                    label: "reduce target".into(),
                    points: ts_points(&report.reduce_slot_series),
                },
            ],
        });
    }
    let per_node = |title: &str,
                    unit: &str,
                    y_max: Option<f64>,
                    show_markers: bool,
                    pick: &dyn Fn(&simgrid::usage::NodeUtilization) -> &TimeSeries|
     -> Option<Chart> {
        let series: Vec<Series> = report
            .node_utilization
            .iter()
            .filter(|u| !pick(u).is_empty())
            .map(|u| Series {
                label: format!("node {}", u.node),
                points: ts_points(pick(u)),
            })
            .collect();
        if series.is_empty() {
            return None;
        }
        Some(Chart {
            title: title.into(),
            unit: unit.into(),
            y_max,
            show_markers,
            series,
        })
    };
    charts.extend(
        [
            per_node("Map-slot occupancy", "slots", None, true, &|u| {
                &u.map_occupied
            }),
            per_node("Reduce-slot occupancy", "slots", None, true, &|u| {
                &u.reduce_occupied
            }),
            per_node("CPU utilization", "of capacity", Some(1.0), false, &|u| {
                &u.cpu
            }),
            per_node("Disk utilization", "of capacity", Some(1.0), false, &|u| {
                &u.disk
            }),
            per_node(
                "Network utilization",
                "of capacity",
                Some(1.0),
                false,
                &|u| &u.nic,
            ),
        ]
        .into_iter()
        .flatten(),
    );
    charts
}

fn ts_points(ts: &TimeSeries) -> Vec<(f64, f64)> {
    ts.points()
        .iter()
        .map(|&(t, v)| (t.as_secs_f64(), v))
        .collect()
}

fn fmt_counter(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simgrid::time::SimTime;

    fn recorded_run() -> (RunReport, AuditSetup) {
        let mut cfg = EngineConfig::small_test(4, 7);
        cfg.record_events = true;
        let setup = AuditSetup::from_config(&cfg);
        let job = Puma::Terasort.job(0, 1024.0, 8, SimTime::ZERO);
        let seed = cfg.seed;
        let report = run_once(&cfg, vec![job], &System::SMapReduce, seed).expect("runs clean");
        (report, setup)
    }

    #[test]
    fn spec_reconstructs_the_run() {
        let (report, setup) = recorded_run();
        let violations = audit(&report, &setup);
        let spec = spec_from_run("test run", "SMapReduce", &report, &violations);
        assert_eq!(spec.lanes.len(), 4);
        let spans: usize = spec.lanes.iter().map(|l| l.spans.len()).sum();
        // every launched attempt produced ≥1 span; reduces produce 2
        let launched = report.counters.get(mapreduce::Counter::TotalLaunchedMaps)
            + report
                .counters
                .get(mapreduce::Counter::TotalLaunchedReduces);
        assert!(
            spans as f64 >= launched,
            "{spans} spans for {launched} launches"
        );
        assert!(spec
            .charts
            .iter()
            .any(|c| c.title == "Cluster slot targets"));
        assert!(spec.charts.iter().any(|c| c.title == "CPU utilization"));
        assert!(!spec.markers.is_empty(), "SMapReduce decides at runtime");
        assert!(!spec.counters.is_empty());
        assert!(spec.audited && spec.violations.is_empty());
        // spans fit the run and are ordered per lane
        for lane in &spec.lanes {
            for w in lane.spans.windows(2) {
                assert!(w[0].start <= w[1].start);
            }
            for s in &lane.spans {
                assert!(s.start <= s.end && s.end <= spec.t_end + 1e-9);
                assert_eq!(s.outcome, SpanOutcome::Completed, "clean run: {:?}", s);
            }
        }
        let html = render_dashboard(&spec);
        assert!(html.contains("auditor: all invariants hold"));
    }

    #[test]
    fn fig1_dashboard_renders_clean() {
        let html = render_for_target("fig1", Scale::Quick).expect("fig1 dashboard");
        assert!(html.contains("<svg class=\"gantt\""));
        assert!(html.contains("HadoopV1"));
        assert!(html.contains("auditor: all invariants hold"));
    }

    #[test]
    fn ext_faults_dashboard_shows_crashes() {
        let html = render_for_target("ext-faults", Scale::Quick).expect("ext-faults dashboard");
        assert!(html.contains("class=\"outage\""), "crash windows drawn");
        assert!(html.contains("auditor: all invariants hold"));
        assert!(html.contains('\u{2715}'), "crash-killed attempts marked");
    }
}

//! Extension experiment — sustained mixed load, two regimes.
//!
//! Not a paper figure. The paper's introduction motivates runtime slot
//! management with "the workload is typically always changing in the
//! cluster", but §V-F only tests four identical jobs. Here two Poisson
//! arrival traces over four benchmark classes probe the boundary of the
//! approach:
//!
//! * **batch**: large jobs, long stable stretches — the slot manager gets
//!   time to converge on each mix, as in the paper's experiments;
//! * **interactive**: small jobs arriving every ~45 s — the mix (and thus
//!   the right slot split) changes faster than the manager's slow start +
//!   climb, so its advantage evaporates and its adaptation churn costs.
//!
//! The second regime is an honest negative result: dynamic slot
//! management needs workload stretches longer than its adaptation time —
//! the flip side of Fig. 6's "the larger the input, the more benefit".

use crate::runner::{prepare_warm, run_cells, CellRequest, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use workloads::TraceSpec;

/// One system's outcome over one trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadCell {
    pub trace: String,
    pub system: String,
    pub jobs: usize,
    pub mean_execution_s: f64,
    pub makespan_s: f64,
    pub cpu_utilisation: f64,
}

/// The experiment's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtLoad {
    pub cells: Vec<LoadCell>,
}

impl ExtLoad {
    pub fn cell(&self, trace: &str, system: &str) -> &LoadCell {
        self.cells
            .iter()
            .find(|c| c.trace == trace && c.system == system)
            .unwrap_or_else(|| panic!("no cell {trace}/{system}"))
    }
}

/// Run both traces under the three systems — one batched grid of six
/// cells, each trace's systems warm-starting from one shared capsule of
/// the common prefix (cluster boot + DFS load of every job).
pub fn run(scale: Scale) -> ExtLoad {
    let mut traces = Vec::new();
    let mut requests = Vec::new();
    for (label, mut spec) in [
        ("batch", TraceSpec::batch_load()),
        ("interactive", TraceSpec::mixed_load()),
    ] {
        spec.horizon_s *= scale.input_factor().max(0.3);
        spec.input_mb = (
            scale.input(spec.input_mb.0).max(512.0),
            scale.input(spec.input_mb.1).max(1024.0),
        );
        let jobs = spec.generate(17);
        let cfg = EngineConfig::paper_default();
        let warm = Arc::new(prepare_warm(&cfg, jobs.clone(), cfg.seed).expect("warm capture"));
        for sys in System::all() {
            requests.push(CellRequest::warm(
                Arc::clone(&warm),
                cfg.clone(),
                sys,
                cfg.seed,
            ));
            traces.push(label);
        }
    }
    let reports = run_cells(&requests).reports;
    let cells = traces
        .into_iter()
        .zip(reports)
        .map(|(trace, r)| {
            let r = r.expect("load run");
            LoadCell {
                trace: trace.to_string(),
                system: r.policy.clone(),
                jobs: r.jobs.len(),
                mean_execution_s: r.mean_execution_time().as_secs_f64(),
                makespan_s: r.makespan().as_secs_f64(),
                cpu_utilisation: r.cpu_utilisation,
            }
        })
        .collect();
    ExtLoad { cells }
}

/// Plain-text rendering.
pub fn render(e: &ExtLoad) -> String {
    let mut out = String::from("Extension — sustained mixed load (Poisson arrivals)\n\n");
    let headers = [
        "trace",
        "system",
        "jobs",
        "mean exec(s)",
        "makespan(s)",
        "cpu util",
    ];
    let rows: Vec<Vec<String>> = e
        .cells
        .iter()
        .map(|c| {
            vec![
                c.trace.clone(),
                c.system.clone(),
                c.jobs.to_string(),
                table::secs(c.mean_execution_s),
                table::secs(c.makespan_s),
                format!("{:.0}%", c.cpu_utilisation * 100.0),
            ]
        })
        .collect();
    out.push_str(&table::render_table(&headers, &rows));
    for trace in ["batch", "interactive"] {
        let smr = e.cell(trace, "SMapReduce");
        let v1 = e.cell(trace, "HadoopV1");
        out.push_str(&format!(
            "\n{trace}: SMapReduce mean = {:.0}% of HadoopV1, utilisation {:.0}% vs {:.0}%",
            100.0 * smr.mean_execution_s / v1.mean_execution_s,
            smr.cpu_utilisation * 100.0,
            v1.cpu_utilisation * 100.0,
        ));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_load_favours_the_slot_manager_interactive_does_not() {
        let e = run(Scale::Quick);
        assert_eq!(e.cells.len(), 6);
        // batch: long jobs, stable stretches — the slot manager wins
        let smr = e.cell("batch", "SMapReduce");
        let v1 = e.cell("batch", "HadoopV1");
        assert_eq!(smr.jobs, v1.jobs, "same trace");
        // (at Quick scale the batch jobs shrink to a few GB and the win
        // narrows to a tie; the full-scale `reproduce ext-load` shows the
        // 16% batch advantage)
        assert!(
            smr.mean_execution_s <= v1.mean_execution_s * 1.02,
            "batch: SMR mean {} vs V1 {}",
            smr.mean_execution_s,
            v1.mean_execution_s
        );
        // interactive churn: the advantage evaporates (the documented
        // limitation) — but it must not collapse either
        let smr_i = e.cell("interactive", "SMapReduce");
        let v1_i = e.cell("interactive", "HadoopV1");
        assert!(
            smr_i.mean_execution_s < v1_i.mean_execution_s * 1.5,
            "interactive: SMR {} vs V1 {} — churn hurts but must stay bounded",
            smr_i.mean_execution_s,
            v1_i.mean_execution_s
        );
    }
}

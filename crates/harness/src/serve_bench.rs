//! `reproduce serve-bench` — the realtime service under scripted
//! multi-tenant load.
//!
//! Spins up N tenant clusters (≥ 32 at either scale; that floor is a hard
//! gate, not a tuning knob) across the four system labels, submits a PUMA
//! job mix in two waves with faults and pause/resume sprinkled between,
//! and hammers the observation pool from reader threads the whole time.
//! Measures what the service contracts promise:
//!
//! - **ticks/sec** — tick-thread throughput under full tenant load;
//! - **p99 command-to-apply latency** — ingress commands block only until
//!   the next tick boundary;
//! - **reader staleness bound** — the max ticks any reader ever saw a
//!   live (still-advancing) tenant's frame lag the tick counter, which
//!   the skip-don't-block publish rule keeps small;
//! - **replay verification** — the recorded ingress script is replayed
//!   offline after shutdown and must land on the exact per-tenant rolling
//!   state hashes the live run published.

use crate::scale::Scale;
use realtime::{RealtimeService, ServiceConfig, ServiceHandle};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The job mix: (benchmark, input MB, reduces), cycled across tenants.
const JOB_MIX: &[(&str, f64, usize)] = &[
    ("grep", 1024.0, 4),
    ("terasort", 768.0, 4),
    ("wordcount", 512.0, 2),
    ("kmeans", 384.0, 2),
    ("invertedindex", 512.0, 4),
];

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBench {
    pub tenants: usize,
    pub workers_per_tenant: usize,
    pub ticks: u64,
    pub quantum_ms: u64,
    pub wall_seconds: f64,
    pub ticks_per_sec: f64,
    pub sim_seconds_per_wall_second: f64,
    pub commands_applied: u64,
    pub p50_command_apply_us: u64,
    pub p99_command_apply_us: u64,
    pub frames_published: u64,
    pub frames_reclaimed: u64,
    pub publish_skips: u64,
    pub missed_ticks: u64,
    pub reader_reads: u64,
    pub torn_frames: u64,
    pub max_reader_staleness_ticks: u64,
    pub jobs_submitted: u64,
    pub jobs_completed: u64,
    pub replay_verified: bool,
    pub replay_points_checked: usize,
    pub replay_mismatches: Vec<String>,
}

struct ReaderStats {
    reads: AtomicU64,
    torn: AtomicU64,
    max_staleness: AtomicU64,
}

fn reader_loop(handle: &ServiceHandle, tenants: usize, stop: &AtomicBool, stats: &ReaderStats) {
    let obs = handle.observations();
    while !stop.load(Ordering::Acquire) {
        for id in 0..tenants {
            let Some(frame) = obs.frame(id) else { continue };
            stats.reads.fetch_add(1, Ordering::Relaxed);
            if !frame.is_consistent() {
                stats.torn.fetch_add(1, Ordering::Relaxed);
            }
            // staleness only means something for tenants that are still
            // advancing: finished/paused tenants legitimately stop
            // publishing, so their frames age without bound by design
            if frame.epoch > 0 && !frame.paused && !frame.obs.all_finished && frame.error.is_none()
            {
                let now = obs.tick();
                let lag = now.saturating_sub(frame.tick + 1);
                stats.max_staleness.fetch_max(lag, Ordering::Relaxed);
            }
        }
    }
}

pub fn run(scale: Scale) -> ServeBench {
    let tenants: usize = match scale {
        Scale::Full => 40,
        Scale::Quick => 32, // the ≥32-tenant gate holds at every scale
    };
    let workers_per_tenant = 8;
    let readers = 4;
    let cfg = ServiceConfig {
        tick_interval: Duration::from_millis(2),
        dilation: 4000.0, // 8 sim-seconds per tick
        record_script: true,
        ..ServiceConfig::default()
    };
    let quantum_ms = cfg.quantum_ms();
    let handle = RealtimeService::spawn(cfg);

    // boot the fleet round-robin across the four systems
    let mut jobs_submitted = 0u64;
    for i in 0..tenants {
        let system = realtime::SYSTEM_LABELS[i % realtime::SYSTEM_LABELS.len()];
        let id = handle
            .create_tenant(
                &format!("bench-{i:02}"),
                workers_per_tenant,
                1000 + i as u64,
                system,
            )
            .expect("create tenant");
        assert_eq!(id, i);
        let (bench, mb, reduces) = JOB_MIX[i % JOB_MIX.len()];
        handle
            .submit_job(id, bench, mb, reduces)
            .expect("submit job");
        jobs_submitted += 1;
    }

    // readers hammer the pool for the whole run
    let stop = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ReaderStats {
        reads: AtomicU64::new(0),
        torn: AtomicU64::new(0),
        max_staleness: AtomicU64::new(0),
    });
    let reader_threads: Vec<_> = (0..readers)
        .map(|_| {
            let handle = handle.clone();
            let stop = stop.clone();
            let stats = stats.clone();
            std::thread::spawn(move || reader_loop(&handle, tenants, &stop, &stats))
        })
        .collect();

    // mid-run churn: faults on a few tenants, pause/resume on others, and
    // a second job wave so finished tenants re-enter the ready set
    let started = Instant::now();
    for i in (0..tenants).step_by(7) {
        handle
            .inject_fault(i, (i % workers_per_tenant).max(1), 20_000, Some(40_000))
            .expect("inject fault");
    }
    for i in (0..tenants).step_by(11) {
        handle.pause(i).expect("pause");
    }
    while handle.tick() < 50 {
        std::thread::sleep(Duration::from_millis(2));
    }
    for i in (0..tenants).step_by(11) {
        handle.resume(i).expect("resume");
    }
    for i in 0..tenants {
        let (bench, mb, reduces) = JOB_MIX[(i + 2) % JOB_MIX.len()];
        handle
            .submit_job(i, bench, mb * 0.5, reduces)
            .expect("submit second-wave job");
        jobs_submitted += 1;
    }

    // run until every tenant drained its queue (bounded by wall time)
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let all_done = (0..tenants).all(|id| {
            handle
                .frame(id)
                .is_some_and(|f| f.obs.all_finished && f.error.is_none())
        });
        if all_done || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Release);
    for r in reader_threads {
        r.join().expect("reader thread");
    }
    let summary = handle.shutdown().expect("service summary");
    let wall_seconds = started.elapsed().as_secs_f64();

    // offline replay of the recorded script is the bench's core gate
    let script = summary.script.as_ref().expect("script recorded");
    let outcome = script.replay();

    let jobs_completed: u64 = summary.tenants.iter().map(|t| t.jobs_completed).sum();
    let sim_ms: u64 = summary
        .tenants
        .iter()
        .map(|t| t.sim_now_ms)
        .max()
        .unwrap_or(0);
    ServeBench {
        tenants,
        workers_per_tenant,
        ticks: summary.ticks,
        quantum_ms,
        wall_seconds,
        ticks_per_sec: if wall_seconds > 0.0 {
            summary.ticks as f64 / wall_seconds
        } else {
            0.0
        },
        sim_seconds_per_wall_second: if wall_seconds > 0.0 {
            sim_ms as f64 / 1000.0 / wall_seconds
        } else {
            0.0
        },
        commands_applied: summary.commands_applied,
        p50_command_apply_us: summary.latency_quantile_us(0.50),
        p99_command_apply_us: summary.latency_quantile_us(0.99),
        frames_published: summary.frames_published,
        frames_reclaimed: summary.frames_reclaimed,
        publish_skips: summary.publish_skips,
        missed_ticks: summary.missed_ticks,
        reader_reads: stats.reads.load(Ordering::Relaxed),
        torn_frames: stats.torn.load(Ordering::Relaxed),
        max_reader_staleness_ticks: stats.max_staleness.load(Ordering::Relaxed),
        jobs_submitted,
        jobs_completed,
        replay_verified: outcome.verified,
        replay_points_checked: outcome.points_checked,
        replay_mismatches: outcome.mismatches,
    }
}

/// Structural gates: what must hold for the bench to count at all.
/// Returns the violated claims (empty = pass).
pub fn gate(b: &ServeBench) -> Vec<String> {
    let mut violations = Vec::new();
    if b.tenants < 32 {
        violations.push(format!("only {} tenants (gate: >= 32)", b.tenants));
    }
    if b.torn_frames > 0 {
        violations.push(format!("{} torn frames observed", b.torn_frames));
    }
    if !b.replay_verified {
        violations.push(format!(
            "ingress script replay diverged: {:?}",
            b.replay_mismatches
        ));
    }
    if b.jobs_completed < b.jobs_submitted {
        violations.push(format!(
            "only {}/{} jobs completed before the wall deadline",
            b.jobs_completed, b.jobs_submitted
        ));
    }
    // staleness bound: a reader may lag while readers themselves hold
    // slots, but a live tenant's frame must never fall a whole second of
    // wall time behind the tick counter
    let staleness_cap = 500;
    if b.max_reader_staleness_ticks > staleness_cap {
        violations.push(format!(
            "reader staleness {} ticks (gate: <= {staleness_cap})",
            b.max_reader_staleness_ticks
        ));
    }
    if b.reader_reads == 0 {
        violations.push("readers never ran".into());
    }
    violations
}

pub fn render(b: &ServeBench) -> String {
    let mut out = String::new();
    out.push_str("serve-bench: realtime service under multi-tenant load\n");
    out.push_str(&format!(
        "  {} tenants x {} workers, quantum {} ms/tick\n",
        b.tenants, b.workers_per_tenant, b.quantum_ms
    ));
    out.push_str(&format!(
        "  {} ticks in {:.2}s wall ({:.0} ticks/s, {:.0} sim-s per wall-s)\n",
        b.ticks, b.wall_seconds, b.ticks_per_sec, b.sim_seconds_per_wall_second
    ));
    out.push_str(&format!(
        "  {} commands applied, apply latency p50 {} us / p99 {} us\n",
        b.commands_applied, b.p50_command_apply_us, b.p99_command_apply_us
    ));
    out.push_str(&format!(
        "  {} frames published ({} recycled bodies, {} skips, {} missed ticks)\n",
        b.frames_published, b.frames_reclaimed, b.publish_skips, b.missed_ticks
    ));
    out.push_str(&format!(
        "  readers: {} reads, {} torn, max staleness {} ticks\n",
        b.reader_reads, b.torn_frames, b.max_reader_staleness_ticks
    ));
    out.push_str(&format!(
        "  jobs: {}/{} completed\n",
        b.jobs_completed, b.jobs_submitted
    ));
    out.push_str(&format!(
        "  replay: {} ({} hash points checked)\n",
        if b.replay_verified {
            "verified"
        } else {
            "DIVERGED"
        },
        b.replay_points_checked
    ));
    let violations = gate(b);
    if violations.is_empty() {
        out.push_str("  gates: all pass\n");
    } else {
        for v in &violations {
            out.push_str(&format!("  GATE VIOLATION: {v}\n"));
        }
    }
    out
}

//! Figure 5 — HistogramRatings map time under different initial map-slot
//! configurations (1..8 per node), all three systems.
//!
//! Expected shape: HadoopV1's map time is U-shaped in the configured slot
//! count (too few ⇒ underutilised, too many ⇒ thrashing); YARN is similar
//! but flatter; SMapReduce is nearly flat — wherever it starts, the slot
//! manager converges to the same operating point, and at the baselines'
//! optimal configuration it matches them.

use crate::runner::{run_averaged, System};
use crate::scale::Scale;
use crate::table;
use mapreduce::EngineConfig;
use serde::{Deserialize, Serialize};
use workloads::Puma;

/// One system's map time per initial slot configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotSweepCurve {
    pub system: String,
    /// `(initial map slots per node, map time seconds)`.
    pub points: Vec<(usize, f64)>,
}

/// The figure's data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    pub benchmark: String,
    pub curves: Vec<SlotSweepCurve>,
}

/// Run the sweep.
pub fn run(scale: Scale) -> Fig5 {
    let bench = Puma::HistogramRatings;
    let sweep = workloads::map_slot_sweep();
    let curves = System::all()
        .iter()
        .map(|sys| {
            let points = sweep
                .iter()
                .map(|&slots| {
                    let mut cfg = EngineConfig::paper_default();
                    cfg.init_map_slots = slots;
                    let job = bench.job(
                        0,
                        scale.input(bench.default_input_mb()),
                        30,
                        Default::default(),
                    );
                    let avg = run_averaged(&cfg, &[job], sys, scale.trials()).expect("fig5 run");
                    (slots, avg.map_time_s)
                })
                .collect();
            SlotSweepCurve {
                system: sys.label().to_string(),
                points,
            }
        })
        .collect();
    Fig5 {
        benchmark: bench.name().to_string(),
        curves,
    }
}

/// Figure as gnuplot series.
pub fn to_gnuplot(f: &Fig5) -> crate::output::GnuplotFigure {
    crate::output::GnuplotFigure {
        title: format!("Fig. 5 — {} map time vs configured map slots", f.benchmark),
        xlabel: "initial map slots per node".into(),
        ylabel: "map time (s)".into(),
        series: f
            .curves
            .iter()
            .map(|c| {
                (
                    c.system.clone(),
                    c.points.iter().map(|&(x, y)| (x as f64, y)).collect(),
                )
            })
            .collect(),
    }
}

/// Plain-text rendering.
pub fn render(f: &Fig5) -> String {
    let mut out = format!(
        "Figure 5 — {} map time (s) vs configured map slots per node\n\n",
        f.benchmark
    );
    let mut headers = vec!["slots".to_string()];
    headers.extend(f.curves.iter().map(|c| c.system.clone()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = (0..f.curves[0].points.len())
        .map(|i| {
            let mut row = vec![f.curves[0].points[i].0.to_string()];
            row.extend(f.curves.iter().map(|c| table::secs(c.points[i].1)));
            row
        })
        .collect();
    out.push_str(&table::render_table(&headers_ref, &rows));
    // variability summary: SMapReduce should be the flattest curve
    for c in &f.curves {
        let times: Vec<f64> = c.points.iter().map(|p| p.1).collect();
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        out.push_str(&format!(
            "{}: worst/best config ratio {:.2}\n",
            c.system,
            max / min
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smapreduce_is_least_sensitive_to_configuration() {
        let f = run(Scale::Quick);
        let spread = |name: &str| {
            let c = f
                .curves
                .iter()
                .find(|c| c.system == name)
                .expect("curve present");
            let times: Vec<f64> = c.points.iter().map(|p| p.1).collect();
            let min = times.iter().copied().fold(f64::INFINITY, f64::min);
            let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            max / min
        };
        assert!(
            spread("SMapReduce") < spread("HadoopV1"),
            "SMR spread {:.2} must beat V1 {:.2}",
            spread("SMapReduce"),
            spread("HadoopV1")
        );
    }

    #[test]
    fn render_has_ratio_lines() {
        let f = Fig5 {
            benchmark: "B".into(),
            curves: vec![SlotSweepCurve {
                system: "S".into(),
                points: vec![(1, 100.0), (2, 50.0)],
            }],
        };
        let s = render(&f);
        assert!(s.contains("worst/best config ratio 2.00"));
    }
}

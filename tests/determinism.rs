//! Reproducibility guarantees: a seeded run is exactly repeatable, and
//! seeds are the *only* source of variation.

use harness::{run_once, System};
use mapreduce::EngineConfig;
use workloads::Puma;

fn job() -> mapreduce::JobSpec {
    Puma::SequenceCount.job(0, 6.0 * 1024.0, 20, Default::default())
}

#[test]
fn identical_seeds_identical_runs_all_systems() {
    let cfg = EngineConfig::paper_default();
    for sys in System::all() {
        let a = run_once(&cfg, vec![job()], &sys, 1234).unwrap();
        let b = run_once(&cfg, vec![job()], &sys, 1234).unwrap();
        assert_eq!(a.slot_changes, b.slot_changes, "{}", sys.label());
        let (ja, jb) = (&a.jobs[0], &b.jobs[0]);
        assert_eq!(ja.finished_at, jb.finished_at, "{}", sys.label());
        assert_eq!(ja.maps_done_at, jb.maps_done_at);
        assert_eq!(ja.progress.len(), jb.progress.len());
        for (pa, pb) in ja.progress.points().iter().zip(jb.progress.points()) {
            assert_eq!(pa.0, pb.0);
            assert_eq!(pa.1.to_bits(), pb.1.to_bits(), "bitwise-identical progress");
        }
        // slot series identical too
        for (pa, pb) in a
            .map_slot_series
            .points()
            .iter()
            .zip(b.map_slot_series.points())
        {
            assert_eq!(pa, pb);
        }
    }
}

#[test]
fn serialized_event_logs_and_reports_are_byte_identical() {
    // the strongest reproducibility claim: not just matching timings but
    // byte-identical serialized artifacts, event log included
    let mut cfg = EngineConfig::small_test(4, 7);
    cfg.record_events = true;
    for sys in System::all() {
        let a = run_once(&cfg, vec![job()], &sys, 4242).unwrap();
        let b = run_once(&cfg, vec![job()], &sys, 4242).unwrap();
        assert!(!a.events.is_empty(), "{}: events recorded", sys.label());
        let ev_a = serde_json::to_string(&a.events).unwrap();
        let ev_b = serde_json::to_string(&b.events).unwrap();
        assert_eq!(ev_a, ev_b, "{}: event logs byte-identical", sys.label());
        let rep_a = serde_json::to_string(&a).unwrap();
        let rep_b = serde_json::to_string(&b).unwrap();
        assert_eq!(rep_a, rep_b, "{}: full reports byte-identical", sys.label());
    }
}

#[test]
fn telemetry_is_strictly_observational() {
    // an enabled telemetry sink must not perturb the simulation: the
    // serialized report of an instrumented run matches the plain run
    use mapreduce::Engine;
    let mut cfg = EngineConfig::small_test(4, 7);
    cfg.record_events = true;
    cfg.seed = 77;
    let mut p1 = smapreduce::SlotManagerPolicy::paper_default();
    let plain = Engine::new(cfg.clone()).run(vec![job()], &mut p1).unwrap();
    let mut p2 = smapreduce::SlotManagerPolicy::paper_default();
    let telem = telemetry::Telemetry::enabled();
    let traced = Engine::new(cfg)
        .run_with(vec![job()], &mut p2, &telem)
        .unwrap();
    assert!(
        telem.instant_count() > 0,
        "the sink really observed the run"
    );
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&traced).unwrap(),
        "telemetry must never feed back into simulation state"
    );
}

#[test]
fn both_stepping_modes_are_individually_deterministic() {
    // determinism must hold per engine mode: the fixed-tick reference and
    // the adaptive event-horizon engine each reproduce themselves exactly
    // (they need not — and do not — reproduce each other bit-for-bit)
    use simgrid::time::SteppingMode;
    for mode in [SteppingMode::Fixed, SteppingMode::Adaptive] {
        let mut cfg = EngineConfig::small_test(4, 7);
        cfg.record_events = true;
        cfg.tick.mode = mode;
        let a = run_once(&cfg, vec![job()], &System::SMapReduce, 2718).unwrap();
        let b = run_once(&cfg, vec![job()], &System::SMapReduce, 2718).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{mode:?}: reports byte-identical"
        );
        assert!(a.steps > 0, "{mode:?}: step count reported");
    }
}

#[test]
fn different_seeds_differ_but_agree_roughly() {
    let cfg = EngineConfig::paper_default();
    let a = run_once(&cfg, vec![job()], &System::HadoopV1, 1).unwrap();
    let b = run_once(&cfg, vec![job()], &System::HadoopV1, 2).unwrap();
    let (ta, tb) = (
        a.jobs[0].total_time().as_secs_f64(),
        b.jobs[0].total_time().as_secs_f64(),
    );
    assert_ne!(
        a.jobs[0].finished_at, b.jobs[0].finished_at,
        "different seeds should not collide exactly"
    );
    assert!(
        (ta - tb).abs() / ta < 0.25,
        "seed variation should be modest: {ta} vs {tb}"
    );
}

#[test]
fn seed_only_enters_via_config() {
    // same config object reused twice gives the same result even with
    // interleaved unrelated runs (no hidden global state)
    let cfg = EngineConfig::paper_default();
    let a = run_once(&cfg, vec![job()], &System::SMapReduce, 99).unwrap();
    let _noise = run_once(&cfg, vec![job()], &System::Yarn, 123).unwrap();
    let b = run_once(&cfg, vec![job()], &System::SMapReduce, 99).unwrap();
    assert_eq!(a.jobs[0].finished_at, b.jobs[0].finished_at);
}

//! The qualitative claims of each paper figure, verified end-to-end at
//! reduced scale under the default (adaptive) stepping engine.
//! `reproduce --quick`/full runs regenerate the actual figures; these
//! tests pin the *shapes* in CI. The assertions live in
//! `harness::shapes` so `tests/cross_validation.rs` can hold the
//! fixed-tick reference engine to the identical bar.

use harness::{fig1, fig4, fig5, fig6, fig89, shapes, Scale};

#[test]
fn fig1_shape_thrashing_curves() {
    shapes::assert_fig1_shape(&fig1::run(Scale::Quick));
}

#[test]
fn fig4_shape_progress_curves() {
    shapes::assert_fig4_shape(&fig4::run(Scale::Quick));
}

#[test]
fn fig5_shape_smr_flattest() {
    shapes::assert_fig5_shape(&fig5::run(Scale::Quick));
}

#[test]
fn fig6_shape_smr_grows_with_input() {
    shapes::assert_fig6_shape(&fig6::run(Scale::Quick));
}

#[test]
fn fig8_shape_multi_job_grep() {
    shapes::assert_fig8_shape(&fig89::run_fig8(Scale::Quick));
}

#[test]
fn fig9_shape_multi_job_inverted_index() {
    shapes::assert_fig9_shape(&fig89::run_fig9(Scale::Quick));
}

//! The qualitative claims of each paper figure, verified end-to-end at
//! reduced scale. `reproduce --quick`/full runs regenerate the actual
//! figures; these tests pin the *shapes* in CI.

use harness::{fig1, fig4, fig5, fig6, fig89, Scale};

#[test]
fn fig1_shape_thrashing_curves() {
    let f = fig1::run(Scale::Quick);
    for c in &f.curves {
        // rises from 1 slot to the knee
        let at = |slots: usize| c.points.iter().find(|p| p.0 == slots).unwrap().1;
        assert!(
            at(c.peak_slots) > at(1),
            "{}: knee must beat 1 slot",
            c.benchmark
        );
    }
    let knee = |name: &str| {
        f.curves
            .iter()
            .find(|c| c.benchmark == name)
            .unwrap()
            .peak_slots
    };
    assert!(knee("Grep") > knee("Terasort"), "map-heavy knees later");
}

#[test]
fn fig4_shape_progress_curves() {
    let f = fig4::run(Scale::Quick);
    // every curve passes 100% strictly before its end (the barrier turn)
    for c in &f.curves {
        let t100 = c.points.iter().find(|p| p.1 >= 100.0).unwrap().0;
        let t_end = c.points.last().unwrap().0;
        assert!(t100 < t_end, "{}: barrier inside the run", c.system);
    }
}

#[test]
fn fig5_shape_smr_flattest() {
    let f = fig5::run(Scale::Quick);
    let spread = |name: &str| {
        let c = f.curves.iter().find(|c| c.system == name).unwrap();
        let ts: Vec<f64> = c.points.iter().map(|p| p.1).collect();
        ts.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            / ts.iter().copied().fold(f64::INFINITY, f64::min)
    };
    assert!(spread("SMapReduce") < spread("HadoopV1"));
    // and every system's best configuration beats its worst by design
    assert!(spread("HadoopV1") > 1.3, "V1 must be config-sensitive");
}

#[test]
fn fig6_shape_smr_grows_with_input() {
    let f = fig6::run(Scale::Quick);
    let smr = f.curves.iter().find(|c| c.system == "SMapReduce").unwrap();
    assert!(smr.points.last().unwrap().1 > smr.points.first().unwrap().1);
    assert!(f.final_ratio("HadoopV1") > 1.2);
    assert!(f.final_ratio("YARN") > 1.0);
}

#[test]
fn fig8_shape_multi_job_grep() {
    let f = fig89::run_fig8(Scale::Quick);
    let smr = f.cell("SMapReduce");
    let v1 = f.cell("HadoopV1");
    assert!(smr.mean_execution_s < v1.mean_execution_s);
    assert!(smr.last_finish_s < v1.last_finish_s);
}

#[test]
fn fig9_shape_multi_job_inverted_index() {
    let f = fig89::run_fig9(Scale::Quick);
    let smr = f.cell("SMapReduce");
    let v1 = f.cell("HadoopV1");
    assert!(smr.last_finish_s < v1.last_finish_s * 1.02);
}

//! Cross-validation of the fixed-tick reference engine: every paper-shape
//! assertion from `tests/paper_shapes.rs`, re-run with the whole process
//! pinned to `SteppingMode::Fixed`.
//!
//! Each integration-test file is its own binary (its own process), so the
//! `OnceLock` pin inside `harness::runner` cannot leak into the adaptive
//! suite. Both suites call the identical `harness::shapes` assertions: if
//! the variable-step refactor ever changes an observable the paper cares
//! about, exactly one of the two suites fails and its name says which
//! engine diverged.

use harness::{fig1, fig4, fig5, fig6, fig89, shapes, Scale};
use simgrid::time::SteppingMode;

/// Pin the process to the fixed-tick engine. First caller wins; every
/// test requests the same mode, so concurrent test threads all agree —
/// the assert guards against a future second pin with a different mode.
fn pin_fixed() {
    harness::runner::set_engine_mode(SteppingMode::Fixed);
    assert_eq!(
        harness::runner::engine_mode(),
        Some(SteppingMode::Fixed),
        "another pin got there first with a different mode"
    );
}

#[test]
fn fig1_shape_holds_under_fixed_ticks() {
    pin_fixed();
    shapes::assert_fig1_shape(&fig1::run(Scale::Quick));
}

#[test]
fn fig4_shape_holds_under_fixed_ticks() {
    pin_fixed();
    shapes::assert_fig4_shape(&fig4::run(Scale::Quick));
}

#[test]
fn fig5_shape_holds_under_fixed_ticks() {
    pin_fixed();
    shapes::assert_fig5_shape(&fig5::run(Scale::Quick));
}

#[test]
fn fig6_shape_holds_under_fixed_ticks() {
    pin_fixed();
    shapes::assert_fig6_shape(&fig6::run(Scale::Quick));
}

#[test]
fn fig8_shape_holds_under_fixed_ticks() {
    pin_fixed();
    shapes::assert_fig8_shape(&fig89::run_fig8(Scale::Quick));
}

#[test]
fn fig9_shape_holds_under_fixed_ticks() {
    pin_fixed();
    shapes::assert_fig9_shape(&fig89::run_fig9(Scale::Quick));
}

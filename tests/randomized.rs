//! Randomised invariant sweep: many configurations, one set of invariants.
//!
//! Rather than pinning behaviour per scenario, this drives the whole stack
//! through a grid of seeds × cluster shapes × features (speculation,
//! failures, schedulers, heterogeneity) and checks the properties that must
//! hold in *every* run.

use harness::{run_once, System};
use mapreduce::{EngineConfig, Event, SchedKind};
use simgrid::cluster::ClusterSpec;
use simgrid::node::NodeSpec;
use simgrid::time::SimDuration;
use workloads::Puma;

fn scenario(seed: u64) -> (EngineConfig, Vec<mapreduce::JobSpec>, System) {
    let mut cfg = EngineConfig::paper_default();
    cfg.record_events = true;
    cfg.seed = seed;
    let workers = 2 + (seed as usize % 7); // 2..=8
    cfg.cluster = if seed.is_multiple_of(3) {
        let weak = NodeSpec {
            cores: 8.0,
            ..NodeSpec::paper_worker()
        };
        ClusterSpec::mixed(workers.div_ceil(2), workers / 2 + 1, weak)
    } else {
        ClusterSpec::small(workers)
    };
    cfg.init_map_slots = 1 + (seed as usize % 5);
    cfg.init_reduce_slots = 1 + (seed as usize % 3);
    cfg.scheduler = if seed.is_multiple_of(2) {
        SchedKind::Fifo
    } else {
        SchedKind::Fair
    };
    cfg.speculative_maps = seed % 2 == 1;
    cfg.speculation_min_runtime = SimDuration::from_secs(8);
    cfg.map_failure_rate = if seed % 4 == 2 { 0.08 } else { 0.0 };
    cfg.jitter_amp = 0.1 + 0.05 * (seed % 5) as f64;

    let benches = [
        Puma::Grep,
        Puma::Terasort,
        Puma::WordCount,
        Puma::InvertedIndex,
        Puma::KMeans,
    ];
    let bench = benches[seed as usize % benches.len()];
    let jobs = if seed % 5 == 4 {
        vec![
            bench.job(0, 1024.0, 6, simgrid::time::SimTime::ZERO),
            bench.job(1, 768.0, 6, simgrid::time::SimTime::from_secs(7)),
        ]
    } else {
        vec![bench.job(0, 1536.0, 8, simgrid::time::SimTime::ZERO)]
    };
    let sys = match seed % 4 {
        0 => System::HadoopV1,
        1 => System::Yarn,
        2 => System::SMapReduce,
        _ => System::SMapReduceHetero,
    };
    (cfg, jobs, sys)
}

#[test]
fn invariants_hold_across_the_grid() {
    for seed in 0..16u64 {
        let (cfg, jobs, sys) = scenario(seed);
        let njobs = jobs.len();
        let r = run_once(&cfg, jobs.clone(), &sys, seed).unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({:?} under {}): {e}",
                cfg.scheduler,
                sys.label()
            )
        });
        assert_eq!(r.jobs.len(), njobs, "seed {seed}");

        for (j, spec) in r.jobs.iter().zip(&jobs) {
            // timing sanity
            assert!(j.started_at >= spec.submit_at, "seed {seed}");
            assert!(j.maps_done_at <= j.finished_at, "seed {seed}");
            // progress terminal
            let (_, p) = j.progress.last().expect("progress recorded");
            assert!(p >= 200.0 - 1e-6, "seed {seed}: progress {p}");
            // exactly-once output regardless of failures/speculation
            let expected = spec.input_mb * spec.profile.map_selectivity;
            assert!(
                (j.shuffle_mb - expected).abs() < 1e-6,
                "seed {seed}: shuffle {} vs {expected}",
                j.shuffle_mb
            );
            // locality fraction is a fraction
            assert!((0.0..=1.0).contains(&j.local_map_fraction), "seed {seed}");
            // duration summaries consistent with counts
            let md = j.map_task_durations.expect("map durations");
            assert_eq!(md.n, j.num_maps, "seed {seed}");
        }

        // event accounting: every job's delivered maps == num_maps, and
        // launches == completions + kills + failures (per event stream)
        let launches = r.events.count(|e| matches!(e, Event::MapLaunched { .. }));
        let completions = r.events.count(|e| matches!(e, Event::MapCompleted { .. }));
        let kills = r.events.count(|e| matches!(e, Event::MapKilled { .. }));
        let total_maps: usize = r.jobs.iter().map(|j| j.num_maps).sum();
        assert_eq!(
            completions, total_maps,
            "seed {seed}: one delivery per block"
        );
        // (discarded race losers complete without a MapCompleted event,
        // and failed attempts relaunch — so launches >= completions)
        assert!(
            launches >= completions + kills,
            "seed {seed}: {launches} launches vs {completions}+{kills}"
        );
        assert!(
            launches as u64 <= total_maps as u64 + r.speculative_attempts + r.map_failures,
            "seed {seed}: launch count bounded by retries + backups"
        );
        // utilisation is a fraction
        assert!(
            r.cpu_utilisation > 0.0 && r.cpu_utilisation <= 1.0,
            "seed {seed}: utilisation {}",
            r.cpu_utilisation
        );
    }
}

#[test]
fn grid_runs_are_reproducible() {
    for seed in [3u64, 7, 11] {
        let (cfg, jobs, sys) = scenario(seed);
        let a = run_once(&cfg, jobs.clone(), &sys, seed).unwrap();
        let b = run_once(&cfg, jobs, &sys, seed).unwrap();
        assert_eq!(
            a.jobs.last().unwrap().finished_at,
            b.jobs.last().unwrap().finished_at,
            "seed {seed}"
        );
        assert_eq!(a.events.len(), b.events.len(), "seed {seed}");
        assert_eq!(a.speculative_attempts, b.speculative_attempts);
        assert_eq!(a.map_failures, b.map_failures);
    }
}

//! The invariant auditor as a cross-crate property.
//!
//! The auditor's unit tests pin each invariant individually; these tests
//! drive it through the public API at the integration level: *any* random
//! fault plan, under either slot policy, with or without event recording,
//! must produce a report the auditor passes — and a deliberately corrupted
//! report must not. `harness::run_once` audits internally, so these tests
//! run the engine directly and call the auditor explicitly, keeping the
//! check independent of the harness wiring.

use mapreduce::auditor::{audit, fingerprint, AuditSetup};
use mapreduce::policy::StaticSlotPolicy;
use mapreduce::{Engine, EngineConfig};
use simgrid::cluster::NodeId;
use simgrid::error::SimError;
use simgrid::time::{SimDuration, SimTime};
use simgrid::{FaultPlan, NodeFault};
use smapreduce::SlotManagerPolicy;
use workloads::Puma;

fn job(input_mb: f64) -> mapreduce::JobSpec {
    Puma::SequenceCount.job(0, input_mb, 12, Default::default())
}

proptest::proptest! {
    /// Random fault plans — up to three crashes on any node, at any
    /// instant, permanent or transient, under either policy, with the
    /// event log on or off — never produce a report that violates an
    /// audited invariant. Runs that strand needed work may fail with the
    /// one sanctioned `NodeLost` error; every run that completes must
    /// audit clean.
    #[test]
    fn prop_random_fault_plans_audit_clean(
        seed in 0u64..400,
        faults in proptest::collection::vec(
            (0usize..4, 1u64..240_000, 0u32..2), 0..4),
        record_events in 0u32..2,
        smr in 0u32..2,
    ) {
        let mut cfg = EngineConfig::small_test(4, seed);
        cfg.record_events = record_events == 1;
        cfg.fault_plan = FaultPlan::new(
            faults
                .iter()
                .map(|&(node, at_ms, perm)| {
                    if perm == 1 {
                        NodeFault::permanent(NodeId(node), SimTime::from_millis(at_ms))
                    } else {
                        NodeFault::transient(
                            NodeId(node),
                            SimTime::from_millis(at_ms),
                            SimDuration::from_secs(90),
                        )
                    }
                })
                .collect(),
        );
        let setup = AuditSetup::from_config(&cfg);
        let mut policy: Box<dyn mapreduce::policy::SlotPolicy> = if smr == 1 {
            Box::new(SlotManagerPolicy::paper_default())
        } else {
            Box::new(StaticSlotPolicy)
        };
        match Engine::new(cfg).run(vec![job(768.0)], policy.as_mut()) {
            Ok(report) => {
                let violations = audit(&report, &setup);
                proptest::prop_assert!(
                    violations.is_empty(),
                    "violations: {:?}",
                    violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
                );
            }
            Err(SimError::NodeLost { .. }) => {}
            Err(other) => proptest::prop_assert!(false, "unexpected error: {other}"),
        }
    }
}

#[test]
fn corruption_is_caught_through_the_public_api() {
    let cfg = EngineConfig::small_test(4, 5);
    let setup = AuditSetup::from_config(&cfg);
    let mut policy = StaticSlotPolicy;
    let mut report = Engine::new(cfg)
        .run(vec![job(1024.0)], &mut policy)
        .expect("clean run");
    assert!(audit(&report, &setup).is_empty(), "baseline audits clean");
    let fp = fingerprint(&report);

    // one phantom kill in the run-level ledger: the auditor must notice,
    // and the fingerprint must move
    report.counters.add(mapreduce::Counter::KilledAttempts, 1.0);
    let violations = audit(&report, &setup);
    assert!(
        !violations.is_empty(),
        "a corrupted counter must fail the audit"
    );
    assert_ne!(fp, fingerprint(&report), "fingerprint tracks counter bits");
}

#[test]
fn audit_failure_surfaces_through_run_once() {
    // run_once audits internally; prove its gate is live by checking the
    // error type exists and renders the violation list. (A real violation
    // can't be produced through the public API — that's the point — so
    // construct the error directly.)
    let err = SimError::AuditFailed {
        violations: vec!["shuffle-conservation: off by 1 MB".into()],
    };
    let msg = err.to_string();
    assert!(msg.contains("1 violation"));
    assert!(msg.contains("shuffle-conservation"));
}

//! Serde round-trip properties for the state types capsules carry.
//!
//! A capsule is only trustworthy if deserializing it reconstructs the
//! exact value that was saved — bit-equal floats included. These
//! properties pin that for the counter ledger, fault plans, full run
//! reports, and the capsule envelope itself.

use checkpoint::SimSnapshot;
use harness::runner::run_once_with_snapshots;
use harness::{run_once, System};
use mapreduce::{Counter, CounterLedger, EngineConfig, JobProfile, JobSpec, RunReport};
use proptest::proptest;
use simgrid::cluster::NodeId;
use simgrid::time::{SimDuration, SimTime};
use simgrid::{FaultPlan, NodeFault};

proptest! {
    /// Any ledger built from arbitrary adds survives a JSON round trip
    /// with every counter bit-identical.
    #[test]
    fn counter_ledger_round_trips_bit_exact(
        adds in proptest::collection::vec((0usize..17, 0.0f64..1.0e12), 0..24),
    ) {
        let mut ledger = CounterLedger::default();
        for &(idx, amount) in &adds {
            ledger.add(Counter::ALL[idx], amount);
        }
        let json = serde_json::to_string(&ledger).unwrap();
        let back: CounterLedger = serde_json::from_str(&json).unwrap();
        for c in Counter::ALL {
            proptest::prop_assert_eq!(
                ledger.get(c).to_bits(),
                back.get(c).to_bits(),
                "{} changed across the round trip",
                c.name()
            );
        }
        // and the round trip is a fixed point of serialization
        proptest::prop_assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    /// Fault plans — any mix of permanent and transient crashes — round
    /// trip to an equal plan.
    #[test]
    fn fault_plans_round_trip(
        faults in proptest::collection::vec(
            (0usize..6, 1u64..500_000, 0u32..2, 1u64..600), 0..6),
    ) {
        let plan = FaultPlan::new(
            faults
                .iter()
                .map(|&(node, at_ms, perm, down_s)| {
                    if perm == 1 {
                        NodeFault::permanent(NodeId(node), SimTime::from_millis(at_ms))
                    } else {
                        NodeFault::transient(
                            NodeId(node),
                            SimTime::from_millis(at_ms),
                            SimDuration::from_secs(down_s),
                        )
                    }
                })
                .collect(),
        );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        proptest::prop_assert_eq!(&plan, &back);
        proptest::prop_assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    /// A full run report — series, events, counters, floats — survives a
    /// JSON round trip byte-identically.
    #[test]
    fn run_reports_round_trip_byte_identical(seed in 0u64..500, smr in 0u32..2) {
        let mut cfg = EngineConfig::small_test(3, seed);
        cfg.record_events = seed % 2 == 0;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            768.0,
            4,
            SimTime::ZERO,
        );
        let system = if smr == 1 { System::SMapReduce } else { System::HadoopV1 };
        let report = run_once(&cfg, vec![job], &system, cfg.seed).expect("run completes");
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        proptest::prop_assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}

/// Capsules recorded *before* the dense-substrate refactor (PR 6 code,
/// commit `baed361`) must keep resuming, bit-for-bit. The serialized
/// `EngineState` stayed map-shaped JSON on purpose — every dense posting
/// and slab is derived state, rebuilt from the capsule on resume — so
/// these committed fixtures pin the format compatibility *and* the
/// replay equivalence: each resume must reproduce the exact auditor
/// fingerprint the pre-refactor binary printed when the stream was
/// recorded.
#[test]
fn pre_dense_substrate_capsules_resume_to_recorded_fingerprints() {
    use harness::capsules::resume_capsule;
    use std::path::Path;

    // (fixture, policy it resumes under, pre-refactor fingerprint)
    let fixtures = [
        (
            "tests/fixtures/capsule_pr6_fig1_t60.json",
            "HadoopV1",
            "0x1a87ed2ca1a69a05",
        ),
        (
            "tests/fixtures/capsule_pr6_ext_faults_t60.json",
            "SMapReduce",
            "0x6fefe0c87de14a25",
        ),
    ];
    for (path, policy, fingerprint) in fixtures {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
        // the old capsule still parses into today's envelope, and its
        // serialization is a fixed point (nothing silently renamed)
        let raw = std::fs::read_to_string(&path).expect("fixture present");
        let snap: SimSnapshot = serde_json::from_str(&raw).expect("old capsule parses");
        let reser = serde_json::to_string_pretty(&snap).expect("reserialise");
        let back: SimSnapshot = serde_json::from_str(&reser).expect("round trip");
        assert_eq!(
            reser,
            serde_json::to_string_pretty(&back).unwrap(),
            "round trip is a serialization fixed point"
        );
        // and it resumes under the dense engine to the recorded result
        let summary = resume_capsule(&path).expect("old capsule resumes");
        assert!(
            summary.contains(policy),
            "{path:?} resumed under the wrong policy: {summary}"
        );
        assert!(
            summary.contains(fingerprint),
            "{path:?} diverged from its pre-refactor fingerprint {fingerprint}: {summary}"
        );
    }
}

#[test]
fn capsule_envelopes_round_trip_byte_identical() {
    let cfg = EngineConfig::small_test(4, 23);
    let job = JobSpec::new(
        0,
        JobProfile::synthetic_reduce_heavy(),
        1024.0,
        6,
        SimTime::ZERO,
    );
    let (_, capsules) = run_once_with_snapshots(
        &cfg,
        vec![job],
        &System::SMapReduce,
        cfg.seed,
        SimDuration::from_secs(10),
    )
    .expect("run completes");
    assert!(!capsules.is_empty());
    for state in capsules {
        let snap = SimSnapshot::new(state);
        let json = serde_json::to_string(&snap).unwrap();
        let back: SimSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap.at, back.at);
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}

//! Serde round-trip properties for the state types capsules carry.
//!
//! A capsule is only trustworthy if deserializing it reconstructs the
//! exact value that was saved — bit-equal floats included. These
//! properties pin that for the counter ledger, fault plans, full run
//! reports, and the capsule envelope itself.

use checkpoint::{codec, CapsuleFormat, SimSnapshot};
use harness::runner::run_once_with_snapshots;
use harness::{run_once, System};
use mapreduce::{Counter, CounterLedger, EngineConfig, JobProfile, JobSpec, RunReport};
use proptest::proptest;
use simgrid::cluster::NodeId;
use simgrid::time::{SimDuration, SimTime};
use simgrid::{FaultPlan, NodeFault};

proptest! {
    /// Any ledger built from arbitrary adds survives a JSON round trip
    /// with every counter bit-identical.
    #[test]
    fn counter_ledger_round_trips_bit_exact(
        adds in proptest::collection::vec((0usize..17, 0.0f64..1.0e12), 0..24),
    ) {
        let mut ledger = CounterLedger::default();
        for &(idx, amount) in &adds {
            ledger.add(Counter::ALL[idx], amount);
        }
        let json = serde_json::to_string(&ledger).unwrap();
        let back: CounterLedger = serde_json::from_str(&json).unwrap();
        for c in Counter::ALL {
            proptest::prop_assert_eq!(
                ledger.get(c).to_bits(),
                back.get(c).to_bits(),
                "{} changed across the round trip",
                c.name()
            );
        }
        // and the round trip is a fixed point of serialization
        proptest::prop_assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    /// Fault plans — any mix of permanent and transient crashes — round
    /// trip to an equal plan.
    #[test]
    fn fault_plans_round_trip(
        faults in proptest::collection::vec(
            (0usize..6, 1u64..500_000, 0u32..2, 1u64..600), 0..6),
    ) {
        let plan = FaultPlan::new(
            faults
                .iter()
                .map(|&(node, at_ms, perm, down_s)| {
                    if perm == 1 {
                        NodeFault::permanent(NodeId(node), SimTime::from_millis(at_ms))
                    } else {
                        NodeFault::transient(
                            NodeId(node),
                            SimTime::from_millis(at_ms),
                            SimDuration::from_secs(down_s),
                        )
                    }
                })
                .collect(),
        );
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        proptest::prop_assert_eq!(&plan, &back);
        proptest::prop_assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    /// A full run report — series, events, counters, floats — survives a
    /// JSON round trip byte-identically.
    #[test]
    fn run_reports_round_trip_byte_identical(seed in 0u64..500, smr in 0u32..2) {
        let mut cfg = EngineConfig::small_test(3, seed);
        cfg.record_events = seed % 2 == 0;
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            768.0,
            4,
            SimTime::ZERO,
        );
        let system = if smr == 1 { System::SMapReduce } else { System::HadoopV1 };
        let report = run_once(&cfg, vec![job], &system, cfg.seed).expect("run completes");
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        proptest::prop_assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    /// Arbitrary value trees — every leaf type, nested arrays and
    /// objects, extreme integers, raw float bit patterns — survive the
    /// packed binary codec and its envelope exactly. Identity is checked
    /// on the packed bytes (the deterministic canonical form), which
    /// also covers NaN payloads that `f64` equality cannot.
    #[test]
    fn arbitrary_values_survive_the_binary_codec(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let value = random_value(&mut state, 3);
        let packed = codec::pack_value(&value);
        let unpacked = codec::unpack_value(&packed).expect("own packing unpacks");
        proptest::prop_assert_eq!(
            &packed,
            &codec::pack_value(&unpacked),
            "packed form is not a fixed point"
        );
        let envelope = codec::to_binary(&value);
        let back = codec::from_binary(&envelope).expect("own envelope decodes");
        proptest::prop_assert_eq!(&packed, &codec::pack_value(&back));
    }

    /// Real engine snapshots pass bit-exact through both codecs: decoding
    /// the binary capsule and re-encoding as JSON reproduces the JSON
    /// capsule byte for byte (and both codecs are deterministic).
    #[test]
    fn engine_snapshots_round_trip_json_and_binary(seed in 0u64..10_000) {
        let cfg = EngineConfig::small_test(3, seed);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_map_heavy(),
            512.0,
            4,
            SimTime::ZERO,
        );
        let (_, capsules) = run_once_with_snapshots(
            &cfg,
            vec![job],
            &System::SMapReduce,
            cfg.seed,
            SimDuration::from_secs(20),
        )
        .expect("run completes");
        let state = capsules.into_iter().next_back().expect("capsules captured");
        let snap = SimSnapshot::new(state);
        let json = checkpoint::to_bytes(&snap, CapsuleFormat::Json);
        let binary = checkpoint::to_bytes(&snap, CapsuleFormat::Binary);
        let origin = std::path::Path::new("proptest");
        let from_json = checkpoint::from_bytes(origin, &json).expect("json decodes");
        let from_binary = checkpoint::from_bytes(origin, &binary).expect("binary decodes");
        proptest::prop_assert_eq!(
            &json,
            &checkpoint::to_bytes(&from_binary, CapsuleFormat::Json),
            "binary round trip changed the state"
        );
        proptest::prop_assert_eq!(
            &binary,
            &checkpoint::to_bytes(&from_json, CapsuleFormat::Binary),
            "json round trip changed the state"
        );
    }
}

/// SplitMix64 step for the deterministic value generator below.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An arbitrary JSON value tree in the codec's canonical domain:
/// negative `I64`s only (non-negative integers canonicalise to `U64`,
/// so a non-negative `I64` input would not round-trip as itself).
fn random_value(state: &mut u64, depth: u32) -> serde_json::Value {
    use serde_json::Value;
    let kinds = if depth == 0 { 7 } else { 9 };
    match mix(state) % kinds {
        0 => Value::Null,
        1 => Value::Bool(mix(state) & 1 == 0),
        2 => Value::U64(match mix(state) % 4 {
            0 => u64::MAX,
            1 => mix(state) % 64, // exercise the inline-ref tags
            _ => mix(state),
        }),
        3 => Value::I64(match mix(state) % 4 {
            0 => i64::MIN,
            _ => -((mix(state) >> 1) as i64) - 1,
        }),
        4 => Value::F64(match mix(state) % 4 {
            0 => f64::from_bits(mix(state)), // any bits, NaN included
            1 => -0.0,
            _ => (mix(state) % 100_000) as f64 / 100.0,
        }),
        5 => Value::String(random_string(state)),
        6 => Value::String(String::new()),
        7 => {
            let len = (mix(state) % 5) as usize;
            Value::Array((0..len).map(|_| random_value(state, depth - 1)).collect())
        }
        _ => {
            let len = (mix(state) % 5) as usize;
            Value::Object(
                (0..len)
                    .map(|i| {
                        (
                            format!("{}{i}", random_string(state)),
                            random_value(state, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

fn random_string(state: &mut u64) -> String {
    let len = (mix(state) % 12) as usize;
    (0..len)
        .map(|_| char::from(b'a' + (mix(state) % 26) as u8))
        .collect()
}

/// Truncated, bit-flipped, or garbage binary capsules must be rejected
/// with an error (or, for single flipped bits, at worst decode to some
/// other value) — never panic, never allocate unboundedly.
#[test]
fn corrupt_binary_capsules_never_panic() {
    let cfg = EngineConfig::small_test(3, 5);
    let job = JobSpec::new(
        0,
        JobProfile::synthetic_map_heavy(),
        512.0,
        4,
        SimTime::ZERO,
    );
    let (_, capsules) = run_once_with_snapshots(
        &cfg,
        vec![job],
        &System::HadoopV1,
        cfg.seed,
        SimDuration::from_secs(30),
    )
    .expect("run completes");
    let snap = SimSnapshot::new(capsules.into_iter().next_back().expect("capsules"));
    let bytes = checkpoint::to_bytes(&snap, CapsuleFormat::Binary);
    let origin = std::path::Path::new("corrupt-test");
    // every truncation is an error, not a panic
    for cut in 0..bytes.len() {
        assert!(
            checkpoint::from_bytes(origin, &bytes[..cut]).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }
    // single flipped bytes must not panic (decoding to an error — or, in
    // the string pool, to some other valid value — are both acceptable)
    let mut state = 99u64;
    for _ in 0..256 {
        let mut corrupt = bytes.clone();
        let at = (mix(&mut state) as usize) % corrupt.len();
        corrupt[at] ^= (mix(&mut state) % 255) as u8 + 1;
        let _ = checkpoint::from_bytes(origin, &corrupt);
    }
    // garbage behind a valid magic byte is an error
    let mut garbage = vec![codec::MAGIC[0]];
    garbage.extend((0..64).map(|_| (mix(&mut state) & 0xFF) as u8));
    assert!(checkpoint::from_bytes(origin, &garbage).is_err());
}

/// Capsules recorded *before* the dense-substrate refactor (PR 6 code,
/// commit `baed361`) must keep resuming, bit-for-bit. The serialized
/// `EngineState` stayed map-shaped JSON on purpose — every dense posting
/// and slab is derived state, rebuilt from the capsule on resume — so
/// these committed fixtures pin the format compatibility *and* the
/// replay equivalence: each resume must reproduce the exact auditor
/// fingerprint the pre-refactor binary printed when the stream was
/// recorded.
#[test]
fn pre_dense_substrate_capsules_resume_to_recorded_fingerprints() {
    use harness::capsules::resume_capsule;
    use std::path::Path;

    // (fixture, policy it resumes under, pre-refactor fingerprint)
    let fixtures = [
        (
            "tests/fixtures/capsule_pr6_fig1_t60.json",
            "HadoopV1",
            "0x1a87ed2ca1a69a05",
        ),
        (
            "tests/fixtures/capsule_pr6_ext_faults_t60.json",
            "SMapReduce",
            "0x6fefe0c87de14a25",
        ),
    ];
    for (path, policy, fingerprint) in fixtures {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
        // the old capsule still parses into today's envelope, and its
        // serialization is a fixed point (nothing silently renamed)
        let raw = std::fs::read_to_string(&path).expect("fixture present");
        let snap: SimSnapshot = serde_json::from_str(&raw).expect("old capsule parses");
        let reser = serde_json::to_string_pretty(&snap).expect("reserialise");
        let back: SimSnapshot = serde_json::from_str(&reser).expect("round trip");
        assert_eq!(
            reser,
            serde_json::to_string_pretty(&back).unwrap(),
            "round trip is a serialization fixed point"
        );
        // and it resumes under the dense engine to the recorded result
        let summary = resume_capsule(&path).expect("old capsule resumes");
        assert!(
            summary.contains(policy),
            "{path:?} resumed under the wrong policy: {summary}"
        );
        assert!(
            summary.contains(fingerprint),
            "{path:?} diverged from its pre-refactor fingerprint {fingerprint}: {summary}"
        );
    }
}

#[test]
fn capsule_envelopes_round_trip_byte_identical() {
    let cfg = EngineConfig::small_test(4, 23);
    let job = JobSpec::new(
        0,
        JobProfile::synthetic_reduce_heavy(),
        1024.0,
        6,
        SimTime::ZERO,
    );
    let (_, capsules) = run_once_with_snapshots(
        &cfg,
        vec![job],
        &System::SMapReduce,
        cfg.seed,
        SimDuration::from_secs(10),
    )
    .expect("run completes");
    assert!(!capsules.is_empty());
    for state in capsules {
        let snap = SimSnapshot::new(state);
        let json = serde_json::to_string(&snap).unwrap();
        let back: SimSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap.at, back.at);
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}

//! Multi-job workloads across the full stack (§V-F semantics).

use harness::{run_once, System};
use mapreduce::EngineConfig;
use simgrid::time::SimDuration;
use workloads::{paper_multi_job, staggered_jobs, Puma};

#[test]
fn fifo_finishes_jobs_in_submission_order() {
    let cfg = EngineConfig::paper_default();
    let jobs = staggered_jobs(Puma::Grep, 4, 4.0 * 1024.0, 16, SimDuration::from_secs(5));
    let r = run_once(&cfg, jobs, &System::HadoopV1, 3).unwrap();
    for pair in r.jobs.windows(2) {
        assert!(
            pair[0].finished_at <= pair[1].finished_at,
            "FIFO order violated: {:?} then {:?}",
            pair[0].finished_at,
            pair[1].finished_at
        );
    }
}

#[test]
fn makespan_at_least_longest_execution() {
    let cfg = EngineConfig::paper_default();
    let jobs = paper_multi_job(Puma::InvertedIndex, 4.0 * 1024.0, 16);
    let r = run_once(&cfg, jobs, &System::Yarn, 1).unwrap();
    let longest = r
        .jobs
        .iter()
        .map(|j| j.execution_time().as_millis())
        .max()
        .unwrap();
    assert!(r.makespan().as_millis() >= longest);
    assert!(r.mean_execution_time().as_millis() <= longest);
}

#[test]
fn smapreduce_improves_multi_job_grep_mean_and_makespan() {
    let cfg = EngineConfig::paper_default();
    let jobs = paper_multi_job(Puma::Grep, 10.0 * 1024.0, 30);
    let v1 = run_once(&cfg, jobs.clone(), &System::HadoopV1, 2).unwrap();
    let smr = run_once(&cfg, jobs, &System::SMapReduce, 2).unwrap();
    assert!(
        smr.makespan() < v1.makespan(),
        "SMR makespan {} vs V1 {}",
        smr.makespan(),
        v1.makespan()
    );
    assert!(
        smr.mean_execution_time() < v1.mean_execution_time(),
        "SMR mean {} vs V1 {}",
        smr.mean_execution_time(),
        v1.mean_execution_time()
    );
}

#[test]
fn mixed_benchmark_queue_completes() {
    // different job classes interleaved through one FIFO queue
    let cfg = EngineConfig::paper_default();
    let jobs = vec![
        Puma::Grep.job(0, 2048.0, 8, simgrid::time::SimTime::ZERO),
        Puma::Terasort.job(1, 2048.0, 8, simgrid::time::SimTime::from_secs(5)),
        Puma::WordCount.job(2, 2048.0, 8, simgrid::time::SimTime::from_secs(10)),
    ];
    for sys in System::all() {
        let r = run_once(&cfg, jobs.clone(), &sys, 11).unwrap();
        assert_eq!(r.jobs.len(), 3);
        assert!(r.jobs.iter().all(|j| {
            let (_, p) = j.progress.last().unwrap();
            p >= 200.0 - 1e-6
        }));
    }
}

#[test]
fn late_submission_never_starts_early() {
    let cfg = EngineConfig::paper_default();
    let jobs = staggered_jobs(Puma::WordCount, 3, 2048.0, 8, SimDuration::from_secs(30));
    let r = run_once(&cfg, jobs, &System::SMapReduce, 1).unwrap();
    for j in &r.jobs {
        assert!(
            j.started_at >= j.submit_at,
            "job {} started {} before submission {}",
            j.job.0,
            j.started_at,
            j.submit_at
        );
    }
}

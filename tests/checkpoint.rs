//! Checkpoint & replay guarantees at the workspace level: resume
//! equivalence for every figure's representative run, snapshot/restore at
//! random instants of random-fault-plan runs, and divergence bisection on
//! a deliberately corrupted capsule stream.

use checkpoint::{
    bisect_dirs, codec, prove_resume_equivalence, prove_resume_equivalence_full, CapsuleFormat,
    SimSnapshot,
};
use harness::dashboard::representative;
use harness::runner::{resume_once, run_once_with_snapshots};
use harness::{Scale, System};
use mapreduce::{EngineConfig, JobProfile, JobSpec};
use proptest::proptest;
use simgrid::cluster::NodeId;
use simgrid::time::{SimDuration, SimTime, SteppingMode};
use simgrid::{FaultPlan, NodeFault};
use std::path::PathBuf;

/// Every target `reproduce fingerprint` accepts.
const TARGETS: &[&str] = &[
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ext-hetero",
    "ext-stragglers",
    "ext-fair",
    "ext-load",
    "ext-faults",
    "ablations",
    "model-check",
    "headline",
];

#[test]
fn resume_equivalence_holds_for_every_target() {
    // Several targets share a representative configuration; prove each
    // distinct (config, system) pair once.
    let mut proven: Vec<String> = Vec::new();
    for target in TARGETS {
        let (cfg, jobs, system, _) =
            representative(target, Scale::Quick).expect("representative run");
        let key = format!(
            "{}|{}",
            system.label(),
            serde_json::to_string(&cfg).unwrap()
        );
        if proven.contains(&key) {
            continue;
        }
        let proof = prove_resume_equivalence(&cfg, &jobs, SimDuration::from_secs(30), &mut || {
            system.make_policy()
        })
        .unwrap_or_else(|e| panic!("{target}: {e}"));
        assert!(
            proof.holds(),
            "{target}: resumed run diverged from the straight run \
             (straight {:#018x}, resumed {:#018x} from capsule {:?}/{})",
            proof.straight_fingerprint,
            proof.resumed_fingerprint,
            proof.resumed_from,
            proof.capsules,
        );
        proven.push(key);
    }
    assert!(
        proven.len() >= 3,
        "expected several distinct configurations"
    );
}

proptest! {
    /// Snapshot at a random instant of a random-fault-plan run, restore,
    /// and finish: byte-identical to the uninterrupted run under both the
    /// static policy and the slot manager, in both stepping modes.
    #[test]
    fn random_instant_restore_never_diverges(
        seed in 0u64..10_000,
        fault_s in 4u64..40,
        pick in 0usize..64,
    ) {
        let mut cfg = EngineConfig::small_test(4, seed);
        cfg.tick.mode = if seed % 2 == 0 {
            SteppingMode::Adaptive
        } else {
            SteppingMode::Fixed
        };
        // a transient crash on the heartbeat grid, sparing node 0 so a
        // replica always survives; a generous re-replication budget keeps
        // the run completable at every fault instant
        cfg.rereplication_rate = 400.0;
        cfg.fault_plan = FaultPlan::new(vec![NodeFault::transient(
            NodeId(1 + (seed as usize % 3)),
            SimTime::from_secs((fault_s / 3).max(1) * 3),
            SimDuration::from_secs(90),
        )]);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            1536.0,
            6,
            SimTime::ZERO,
        );
        for system in [System::HadoopV1, System::SMapReduce] {
            let (straight, capsules) = run_once_with_snapshots(
                &cfg,
                vec![job.clone()],
                &system,
                cfg.seed,
                SimDuration::from_secs(10),
            )
            .expect("straight run");
            let state = capsules[pick % capsules.len()].clone();
            let from = state.at();
            let resumed = resume_once(state, &system).expect("resumed run");
            assert_eq!(
                serde_json::to_string(&straight).unwrap(),
                serde_json::to_string(&resumed).unwrap(),
                "{}: restore at t={:?} diverged",
                system.label(),
                from,
            );
        }
    }
}

/// Unique temp dir per test invocation.
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smr-ws-capsule-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn bisect_pinpoints_a_deliberately_corrupted_stream() {
    let cfg = EngineConfig::small_test(4, 11);
    let job = JobSpec::new(
        0,
        JobProfile::synthetic_map_heavy(),
        2048.0,
        8,
        SimTime::ZERO,
    );
    let (_, capsules) = run_once_with_snapshots(
        &cfg,
        vec![job],
        &System::SMapReduce,
        cfg.seed,
        SimDuration::from_secs(5),
    )
    .expect("recorded run");
    assert!(capsules.len() >= 4, "need a few checkpoints to bisect");
    let good = tmp_dir("good");
    let bad = tmp_dir("bad");
    let good_files = checkpoint::write_stream(&good, &capsules).expect("write good stream");
    checkpoint::write_stream(&bad, &capsules).expect("write bad stream");

    // corrupt every capsule from index `k` onward: nudge the step counter,
    // the way a silently divergent replay would
    let k = capsules.len() / 2;
    for path in &good_files[k..] {
        let bad_path = bad.join(path.file_name().unwrap());
        let text = std::fs::read_to_string(&bad_path).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let mut state = v.get("state").unwrap().clone();
        let steps = state.get("steps").unwrap().as_u64().unwrap();
        state.set("steps", serde_json::Value::U64(steps + 7));
        v.set("state", state);
        std::fs::write(&bad_path, serde_json::to_string(&v).unwrap()).unwrap();
    }

    let div = bisect_dirs(&good, &bad)
        .expect("bisect runs")
        .expect("corruption must be found");
    assert_eq!(div.index, k, "first divergent checkpoint");
    assert_eq!(div.at, capsules[k].at());
    assert!(
        div.diffs.iter().any(|d| d.path == "state.steps"),
        "diff must name the corrupted field, got {:?}",
        div.diffs,
    );

    // sanity: the corrupted file still parses as a structurally valid
    // capsule (the divergence is semantic, not syntactic)
    let snap: SimSnapshot =
        checkpoint::load(&bad.join(good_files[k].file_name().unwrap())).expect("still loads");
    assert_eq!(snap.at, capsules[k].at());

    let _ = std::fs::remove_dir_all(&good);
    let _ = std::fs::remove_dir_all(&bad);
}

/// The per-step hash trace (one u64 per step) and the full byte-level
/// report comparison must agree: on the fig1 and ext-faults
/// representative runs, both the cheap proof and the exhaustive proof
/// hold, and they see the same run (same fingerprints, same step count).
#[test]
fn hash_trace_agrees_with_full_report_comparison() {
    for target in ["fig1", "ext-faults"] {
        let (cfg, jobs, system, _) =
            representative(target, Scale::Quick).expect("representative run");
        let cheap = prove_resume_equivalence(&cfg, &jobs, SimDuration::from_secs(30), &mut || {
            system.make_policy()
        })
        .unwrap_or_else(|e| panic!("{target}: {e}"));
        let full =
            prove_resume_equivalence_full(&cfg, &jobs, SimDuration::from_secs(30), &mut || {
                system.make_policy()
            })
            .unwrap_or_else(|e| panic!("{target}: {e}"));
        assert!(
            cheap.holds(),
            "{target}: hash-trace proof failed at {:?}",
            cheap.first_divergence
        );
        assert!(full.holds(), "{target}: full proof failed");
        assert_eq!(
            cheap.byte_identical, None,
            "{target}: cheap proof did bytes"
        );
        assert_eq!(
            full.byte_identical,
            Some(true),
            "{target}: resumed report not byte-identical"
        );
        assert_eq!(
            (cheap.straight_fingerprint, cheap.resumed_fingerprint),
            (full.straight_fingerprint, full.resumed_fingerprint),
            "{target}: the two proofs saw different runs"
        );
        assert_eq!(
            cheap.steps_compared, full.steps_compared,
            "{target}: the two proofs compared different step ranges"
        );
        assert!(cheap.steps_compared > 0, "{target}: no steps compared");
    }
}

/// Bisection works across mixed encodings: the good stream on disk as
/// JSON, the bad stream as binary capsules corrupted from index `k`
/// onward, and `bisect_dirs` still pins pair `k` and names the field.
#[test]
fn bisect_pinpoints_corruption_across_mixed_formats() {
    let cfg = EngineConfig::small_test(4, 13);
    let job = JobSpec::new(
        0,
        JobProfile::synthetic_map_heavy(),
        2048.0,
        8,
        SimTime::ZERO,
    );
    let (_, capsules) = run_once_with_snapshots(
        &cfg,
        vec![job],
        &System::SMapReduce,
        cfg.seed,
        SimDuration::from_secs(5),
    )
    .expect("recorded run");
    assert!(capsules.len() >= 4, "need a few checkpoints to bisect");
    let good = tmp_dir("mixed-good");
    let bad = tmp_dir("mixed-bad");
    checkpoint::write_stream_as(&good, &capsules, CapsuleFormat::Json).expect("write good");
    let bad_files =
        checkpoint::write_stream_as(&bad, &capsules, CapsuleFormat::Binary).expect("write bad");

    let k = capsules.len() / 2;
    for path in &bad_files[k..] {
        let bytes = std::fs::read(path).unwrap();
        let mut v = codec::from_binary(&bytes).expect("own capsule decodes");
        let mut state = v.get("state").unwrap().clone();
        let steps = state.get("steps").unwrap().as_u64().unwrap();
        state.set("steps", serde_json::Value::U64(steps + 7));
        v.set("state", state);
        std::fs::write(path, codec::to_binary(&v)).unwrap();
    }

    let div = bisect_dirs(&good, &bad)
        .expect("bisect runs")
        .expect("corruption must be found");
    assert_eq!(div.index, k, "first divergent checkpoint");
    assert_eq!(div.at, capsules[k].at());
    assert!(!div.stream_truncated);
    assert!(
        div.diffs.iter().any(|d| d.path == "state.steps"),
        "diff must name the corrupted field, got {:?}",
        div.diffs,
    );
    // the paths prove the comparison really crossed encodings
    assert_eq!(div.path_a.extension().unwrap(), "json");
    assert_eq!(div.path_b.extension().unwrap(), "bin");

    let _ = std::fs::remove_dir_all(&good);
    let _ = std::fs::remove_dir_all(&bad);
}

//! Checkpoint & replay guarantees at the workspace level: resume
//! equivalence for every figure's representative run, snapshot/restore at
//! random instants of random-fault-plan runs, and divergence bisection on
//! a deliberately corrupted capsule stream.

use checkpoint::{bisect_dirs, prove_resume_equivalence, SimSnapshot};
use harness::dashboard::representative;
use harness::runner::{resume_once, run_once_with_snapshots};
use harness::{Scale, System};
use mapreduce::{EngineConfig, JobProfile, JobSpec};
use proptest::proptest;
use simgrid::cluster::NodeId;
use simgrid::time::{SimDuration, SimTime, SteppingMode};
use simgrid::{FaultPlan, NodeFault};
use std::path::PathBuf;

/// Every target `reproduce fingerprint` accepts.
const TARGETS: &[&str] = &[
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ext-hetero",
    "ext-stragglers",
    "ext-fair",
    "ext-load",
    "ext-faults",
    "ablations",
    "model-check",
    "headline",
];

#[test]
fn resume_equivalence_holds_for_every_target() {
    // Several targets share a representative configuration; prove each
    // distinct (config, system) pair once.
    let mut proven: Vec<String> = Vec::new();
    for target in TARGETS {
        let (cfg, jobs, system, _) =
            representative(target, Scale::Quick).expect("representative run");
        let key = format!(
            "{}|{}",
            system.label(),
            serde_json::to_string(&cfg).unwrap()
        );
        if proven.contains(&key) {
            continue;
        }
        let proof = prove_resume_equivalence(&cfg, &jobs, SimDuration::from_secs(30), &mut || {
            system.make_policy()
        })
        .unwrap_or_else(|e| panic!("{target}: {e}"));
        assert!(
            proof.holds(),
            "{target}: resumed run diverged from the straight run \
             (straight {:#018x}, resumed {:#018x} from capsule {:?}/{})",
            proof.straight_fingerprint,
            proof.resumed_fingerprint,
            proof.resumed_from,
            proof.capsules,
        );
        proven.push(key);
    }
    assert!(
        proven.len() >= 3,
        "expected several distinct configurations"
    );
}

proptest! {
    /// Snapshot at a random instant of a random-fault-plan run, restore,
    /// and finish: byte-identical to the uninterrupted run under both the
    /// static policy and the slot manager, in both stepping modes.
    #[test]
    fn random_instant_restore_never_diverges(
        seed in 0u64..10_000,
        fault_s in 4u64..40,
        pick in 0usize..64,
    ) {
        let mut cfg = EngineConfig::small_test(4, seed);
        cfg.tick.mode = if seed % 2 == 0 {
            SteppingMode::Adaptive
        } else {
            SteppingMode::Fixed
        };
        // a transient crash on the heartbeat grid, sparing node 0 so a
        // replica always survives; a generous re-replication budget keeps
        // the run completable at every fault instant
        cfg.rereplication_rate = 400.0;
        cfg.fault_plan = FaultPlan::new(vec![NodeFault::transient(
            NodeId(1 + (seed as usize % 3)),
            SimTime::from_secs((fault_s / 3).max(1) * 3),
            SimDuration::from_secs(90),
        )]);
        let job = JobSpec::new(
            0,
            JobProfile::synthetic_reduce_heavy(),
            1536.0,
            6,
            SimTime::ZERO,
        );
        for system in [System::HadoopV1, System::SMapReduce] {
            let (straight, capsules) = run_once_with_snapshots(
                &cfg,
                vec![job.clone()],
                &system,
                cfg.seed,
                SimDuration::from_secs(10),
            )
            .expect("straight run");
            let state = capsules[pick % capsules.len()].clone();
            let from = state.at();
            let resumed = resume_once(state, &system).expect("resumed run");
            assert_eq!(
                serde_json::to_string(&straight).unwrap(),
                serde_json::to_string(&resumed).unwrap(),
                "{}: restore at t={:?} diverged",
                system.label(),
                from,
            );
        }
    }
}

/// Unique temp dir per test invocation.
fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smr-ws-capsule-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn bisect_pinpoints_a_deliberately_corrupted_stream() {
    let cfg = EngineConfig::small_test(4, 11);
    let job = JobSpec::new(
        0,
        JobProfile::synthetic_map_heavy(),
        2048.0,
        8,
        SimTime::ZERO,
    );
    let (_, capsules) = run_once_with_snapshots(
        &cfg,
        vec![job],
        &System::SMapReduce,
        cfg.seed,
        SimDuration::from_secs(5),
    )
    .expect("recorded run");
    assert!(capsules.len() >= 4, "need a few checkpoints to bisect");
    let good = tmp_dir("good");
    let bad = tmp_dir("bad");
    let good_files = checkpoint::write_stream(&good, &capsules).expect("write good stream");
    checkpoint::write_stream(&bad, &capsules).expect("write bad stream");

    // corrupt every capsule from index `k` onward: nudge the step counter,
    // the way a silently divergent replay would
    let k = capsules.len() / 2;
    for path in &good_files[k..] {
        let bad_path = bad.join(path.file_name().unwrap());
        let text = std::fs::read_to_string(&bad_path).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&text).unwrap();
        let mut state = v.get("state").unwrap().clone();
        let steps = state.get("steps").unwrap().as_u64().unwrap();
        state.set("steps", serde_json::Value::U64(steps + 7));
        v.set("state", state);
        std::fs::write(&bad_path, serde_json::to_string(&v).unwrap()).unwrap();
    }

    let div = bisect_dirs(&good, &bad)
        .expect("bisect runs")
        .expect("corruption must be found");
    assert_eq!(div.index, k, "first divergent checkpoint");
    assert_eq!(div.at, capsules[k].at());
    assert!(
        div.diffs.iter().any(|d| d.path == "state.steps"),
        "diff must name the corrupted field, got {:?}",
        div.diffs,
    );

    // sanity: the corrupted file still parses as a structurally valid
    // capsule (the divergence is semantic, not syntactic)
    let snap: SimSnapshot =
        checkpoint::load(&bad.join(good_files[k].file_name().unwrap())).expect("still loads");
    assert_eq!(snap.at, capsules[k].at());

    let _ = std::fs::remove_dir_all(&good);
    let _ = std::fs::remove_dir_all(&bad);
}

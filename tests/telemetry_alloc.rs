//! Telemetry overhead guarantees, enforced with a counting allocator.
//!
//! The engine calls into telemetry on every step (clock reads, span
//! records, counter samples), and since the flight recorder landed it also
//! feeds job counters and the per-node usage sampler from the same loop.
//! Those calls must be allocation-free: a disabled handle is a single
//! branch, an enabled handle pushes `Copy` records into preallocated
//! rings, and counter/usage accumulation is flat array arithmetic. This
//! binary holds exactly one test, and the counter only tracks the test's
//! own thread: the libtest harness's main thread lazily initialises its
//! result-channel thread-locals at an arbitrary instant while the test
//! body runs, and those harness allocations are not ours to forbid.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Raised by the test thread only; allocations on any other thread
    /// (the libtest harness) leave the counter untouched.
    static COUNTED: Cell<bool> = const { Cell::new(false) };
}

fn count() {
    if COUNTED.try_with(Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn step_loop_telemetry_calls_do_not_allocate() {
    use telemetry::ArgValue;

    COUNTED.with(|c| c.set(true));

    // --- disabled handle: the default-build hot path ---
    let telem = telemetry::Telemetry::disabled();
    // handle creation may allocate (detached atomics); done before measuring
    let counter = telem.counter("engine.steps");
    let hist = telem.histogram("engine.step_duration_us");
    let args = [("job", ArgValue::U64(1)), ("node", ArgValue::U64(2))];

    let before = allocs();
    for i in 0..10_000u64 {
        let t0 = telem.clock_us();
        telem.record_span("step", "allocate_nodes", t0, i);
        telem.counter_sample("map_slot_target", i, 12.0);
        telem.instant("lifecycle", "map_launched", i, &args);
        counter.inc();
        hist.record(i);
        let _ = telem.is_enabled();
    }
    assert_eq!(
        allocs() - before,
        0,
        "disabled telemetry must add zero heap allocations to the step loop"
    );

    // --- enabled handle: spans and counter samples land in preallocated
    // rings, so the steady state stays allocation-free too ---
    let telem = telemetry::Telemetry::with_capacity(64, 64);
    let counter = telem.counter("engine.steps");
    let before = allocs();
    for i in 0..10_000u64 {
        let t0 = telem.clock_us();
        telem.record_span("step", "allocate_nodes", t0, i);
        telem.counter_sample("map_slot_target", i, 12.0);
        counter.inc();
    }
    assert_eq!(
        allocs() - before,
        0,
        "enabled rings are preallocated: pushes past capacity overwrite, never grow"
    );
    assert!(telem.dropped_spans() > 0, "ring really wrapped");

    // --- flight-recorder accumulation: job counters and the per-node
    // usage sampler run on the same per-step path and must be equally
    // allocation-free (construction happens once, before measuring) ---
    use mapreduce::{Counter, CounterLedger};
    use simgrid::node::NodeSpec;
    use simgrid::usage::NodeUsageSampler;

    let mut ledger = CounterLedger::new();
    let specs = [NodeSpec::paper_worker(); 4];
    let mut sampler = NodeUsageSampler::new(&specs);
    let before = allocs();
    for i in 0..10_000u64 {
        ledger.add(Counter::HdfsBytesRead, 0.5);
        ledger.inc(Counter::TotalLaunchedMaps);
        let _ = ledger.get(Counter::HdfsBytesRead);
        sampler.accumulate((i % 4) as usize, 1.0, 8.0, 110.0, 60.0, 3, 2);
    }
    assert_eq!(
        allocs() - before,
        0,
        "counter and usage accumulation must add zero allocations per step"
    );

    // --- dense allocate phase: once a warm-up round has sized the
    // epoch-stamped fabric slabs and the positional rate buffer, the whole
    // allocate → usage-sample path must stay allocation-free — at the
    // paper's 16-node testbed and at 256 nodes alike, since slab sizing is
    // the only thing cluster scale changes ---
    use simgrid::cluster::NodeId;
    use simgrid::network::{Fabric, FabricConfig, FabricScratch, Flow, FlowId};

    for nodes in [16usize, 256] {
        let fabric = Fabric::new(FabricConfig::paper_gbe());
        // a shuffle-shaped flow set: a ring of bounded-demand transfers
        // plus an unbounded fan-in hotspot on node 0 (exercises the
        // incast degradation and the contended water-filling rounds)
        let flows: Vec<Flow> = (0..nodes)
            .map(|i| Flow {
                id: FlowId(i as u64),
                src: NodeId(i),
                dst: NodeId((i + 1) % nodes),
                demand: 40.0,
            })
            .chain((1..12).map(|i| Flow {
                id: FlowId((nodes + i) as u64),
                src: NodeId(i),
                dst: NodeId(0),
                demand: f64::INFINITY,
            }))
            .collect();
        let node_specs = vec![NodeSpec::paper_worker(); nodes];
        let mut usage = NodeUsageSampler::new(&node_specs);
        let mut scratch = FabricScratch::new();
        let mut rates = Vec::new();
        let up = vec![true; nodes];
        let cpu = vec![4.0; nodes];
        let disk = vec![60.0; nodes];
        let mut nic_in = vec![0.0; nodes];
        let mut nic_out = vec![0.0; nodes];
        let occ = vec![2usize; nodes];
        // warm-up: sizes the slabs once
        fabric.allocate_into(&flows, nodes, &mut scratch, &mut rates);
        let before = allocs();
        for _ in 0..1_000 {
            fabric.allocate_into(&flows, nodes, &mut scratch, &mut rates);
            for ((fin, fout), &r) in nic_in.iter_mut().zip(nic_out.iter_mut()).zip(&rates) {
                *fout = r;
                *fin = r;
            }
            usage.accumulate_all(0.1, &up, &cpu, &disk, &nic_in, &nic_out, &occ, &occ);
        }
        assert_eq!(
            allocs() - before,
            0,
            "warm dense allocate phase must be allocation-free at {nodes} nodes"
        );
    }

    // --- arena recycling: after a warm-up cell has sized every scratch
    // buffer, a steady-state loop of same-shaped cells must never grow
    // them again — the sweep pool's per-worker arenas stay flat ---
    use harness::runner::{run_once_in, System as SweepSystem};
    use mapreduce::{EngineArena, EngineConfig};
    use workloads::Puma;

    let cfg = EngineConfig::small_test(4, 0);
    let job = || Puma::Grep.job(0, 512.0, 8, Default::default());
    let mut arena = EngineArena::new();
    run_once_in(&cfg, vec![job()], &SweepSystem::SMapReduce, 1, &mut arena).expect("warm-up cell");
    let after_warmup = arena.growth_events();
    for _ in 0..8 {
        run_once_in(&cfg, vec![job()], &SweepSystem::SMapReduce, 1, &mut arena)
            .expect("steady-state cell");
    }
    assert_eq!(
        arena.growth_events(),
        after_warmup,
        "steady-state cells must reuse warm-up capacity, not regrow the arena"
    );
    assert_eq!(arena.cells_served(), 9);
    assert_eq!(
        arena.cells_recycled(),
        8,
        "every cell after the fresh warm-up must recycle"
    );
}

//! Telemetry overhead guarantees, enforced with a counting allocator.
//!
//! The engine calls into telemetry on every step (clock reads, span
//! records, counter samples). Those calls must be allocation-free: a
//! disabled handle is a single branch, and an enabled handle pushes `Copy`
//! records into preallocated rings. This binary holds exactly one test so
//! no concurrent test thread pollutes the allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn step_loop_telemetry_calls_do_not_allocate() {
    use telemetry::ArgValue;

    // --- disabled handle: the default-build hot path ---
    let telem = telemetry::Telemetry::disabled();
    // handle creation may allocate (detached atomics); done before measuring
    let counter = telem.counter("engine.steps");
    let hist = telem.histogram("engine.step_duration_us");
    let args = [("job", ArgValue::U64(1)), ("node", ArgValue::U64(2))];

    let before = allocs();
    for i in 0..10_000u64 {
        let t0 = telem.clock_us();
        telem.record_span("step", "allocate_nodes", t0, i);
        telem.counter_sample("map_slot_target", i, 12.0);
        telem.instant("lifecycle", "map_launched", i, &args);
        counter.inc();
        hist.record(i);
        let _ = telem.is_enabled();
    }
    assert_eq!(
        allocs() - before,
        0,
        "disabled telemetry must add zero heap allocations to the step loop"
    );

    // --- enabled handle: spans and counter samples land in preallocated
    // rings, so the steady state stays allocation-free too ---
    let telem = telemetry::Telemetry::with_capacity(64, 64);
    let counter = telem.counter("engine.steps");
    let before = allocs();
    for i in 0..10_000u64 {
        let t0 = telem.clock_us();
        telem.record_span("step", "allocate_nodes", t0, i);
        telem.counter_sample("map_slot_target", i, 12.0);
        counter.inc();
    }
    assert_eq!(
        allocs() - before,
        0,
        "enabled rings are preallocated: pushes past capacity overwrite, never grow"
    );
    assert!(telem.dropped_spans() > 0, "ring really wrapped");
}

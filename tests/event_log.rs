//! Event-log invariants: the recorded lifecycle must tell a consistent
//! story for every system.

use harness::{run_once, System};
use mapreduce::{EngineConfig, Event};
use std::collections::HashMap;
use workloads::Puma;

fn run_with_events(sys: &System) -> mapreduce::RunReport {
    let mut cfg = EngineConfig::small_test(4, 3);
    cfg.record_events = true;
    let job = Puma::WordCount.job(0, 2048.0, 8, Default::default());
    run_once(&cfg, vec![job], sys, 3).expect("run")
}

#[test]
fn events_are_time_ordered_and_complete() {
    for sys in System::all() {
        let r = run_with_events(&sys);
        let events = r.events.events();
        assert!(!events.is_empty(), "{}: events recorded", sys.label());
        for w in events.windows(2) {
            assert!(w[0].at() <= w[1].at(), "{}: time order", sys.label());
        }
        // 2048 MB / 128 MB = 16 maps, 8 reduces, 1 job
        let count = |p: fn(&Event) -> bool| r.events.count(p);
        assert_eq!(count(|e| matches!(e, Event::MapLaunched { .. })), 16);
        assert_eq!(count(|e| matches!(e, Event::MapCompleted { .. })), 16);
        assert_eq!(count(|e| matches!(e, Event::ReduceLaunched { .. })), 8);
        assert_eq!(count(|e| matches!(e, Event::ShuffleCompleted { .. })), 8);
        assert_eq!(count(|e| matches!(e, Event::ReduceCompleted { .. })), 8);
        assert_eq!(count(|e| matches!(e, Event::BarrierCrossed { .. })), 1);
        assert_eq!(count(|e| matches!(e, Event::JobFinished { .. })), 1);
    }
}

#[test]
fn every_completion_follows_its_launch() {
    let r = run_with_events(&System::SMapReduce);
    let mut launched: HashMap<String, simgrid::time::SimTime> = HashMap::new();
    for e in r.events.events() {
        match e {
            Event::MapLaunched { id, at, .. } => {
                launched.insert(format!("m{}", id.index), *at);
            }
            Event::MapCompleted { id, at, .. } => {
                let l = launched
                    .get(&format!("m{}", id.index))
                    .expect("completed map was launched");
                assert!(l < at, "map {} completes strictly after launch", id.index);
            }
            Event::ReduceLaunched { id, at, .. } => {
                launched.insert(format!("r{}", id.partition), *at);
            }
            Event::ReduceCompleted { id, at, .. } => {
                let l = launched
                    .get(&format!("r{}", id.partition))
                    .expect("completed reduce was launched");
                assert!(l < at);
            }
            _ => {}
        }
    }
}

#[test]
fn shuffles_complete_at_or_after_the_barrier() {
    let r = run_with_events(&System::HadoopV1);
    let barrier = r
        .events
        .events()
        .iter()
        .find_map(|e| match e {
            Event::BarrierCrossed { at, .. } => Some(*at),
            _ => None,
        })
        .expect("barrier recorded");
    for e in r.events.events() {
        if let Event::ShuffleCompleted { at, .. } = e {
            assert!(
                *at >= barrier,
                "shuffle cannot finish before the last map: {at:?} vs {barrier:?}"
            );
        }
    }
}

#[test]
fn map_output_events_conserve_shuffle_volume() {
    let r = run_with_events(&System::Yarn);
    let total: f64 = r
        .events
        .events()
        .iter()
        .map(|e| match e {
            Event::MapCompleted { output_mb, .. } => *output_mb,
            _ => 0.0,
        })
        .sum();
    assert!((total - r.jobs[0].shuffle_mb).abs() < 1e-6);
}

#[test]
fn smapreduce_records_slot_target_changes() {
    let r = run_with_events(&System::SMapReduce);
    let changes = r
        .events
        .count(|e| matches!(e, Event::SlotTargetsChanged { .. }));
    assert_eq!(changes as u64, r.slot_changes);
    let v1 = run_with_events(&System::HadoopV1);
    assert_eq!(
        v1.events
            .count(|e| matches!(e, Event::SlotTargetsChanged { .. })),
        0
    );
}

#[test]
fn events_off_by_default() {
    let cfg = EngineConfig::small_test(2, 1);
    let job = Puma::Grep.job(0, 512.0, 4, Default::default());
    let r = run_once(&cfg, vec![job], &System::HadoopV1, 1).unwrap();
    assert!(r.events.is_empty());
    assert!(!r.events.is_enabled());
}

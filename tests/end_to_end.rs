//! Cross-crate integration: full paper-shaped runs through every layer
//! (workloads → dfs → mapreduce engine → policies → harness runner).

use harness::{run_comparison, run_once, System};
use mapreduce::EngineConfig;
use workloads::Puma;

/// Moderate input so the slot manager has time to adapt but tests stay
/// fast: ~18 GB.
fn job(bench: Puma) -> mapreduce::JobSpec {
    bench.job(0, 18.0 * 1024.0, 30, Default::default())
}

#[test]
fn map_heavy_ordering_smr_first() {
    let cfg = EngineConfig::paper_default();
    let rows = run_comparison(&cfg, &[job(Puma::HistogramRatings)], 1).unwrap();
    let thpt = |name: &str| rows.iter().find(|r| r.system == name).unwrap().throughput;
    assert!(
        thpt("SMapReduce") > thpt("YARN"),
        "SMR {} vs YARN {}",
        thpt("SMapReduce"),
        thpt("YARN")
    );
    assert!(
        thpt("YARN") > thpt("HadoopV1"),
        "YARN {} vs V1 {}",
        thpt("YARN"),
        thpt("HadoopV1")
    );
}

#[test]
fn terasort_exception_is_negligible() {
    let cfg = EngineConfig::paper_default();
    let rows = run_comparison(&cfg, &[job(Puma::Terasort)], 1).unwrap();
    let total = |name: &str| rows.iter().find(|r| r.system == name).unwrap().total_time_s;
    let ratio = total("SMapReduce") / total("HadoopV1");
    // The manager's one-off exploration costs a fixed ~15-25 s; at this
    // reduced 18 GB input that is up to ~10 % of the run, while at the
    // paper-scale 60 GB input (the Fig. 3 experiment) it drops below 1 %.
    assert!(
        (0.95..1.12).contains(&ratio),
        "Terasort SMR/V1 must be a slight slowdown at worst: {ratio:.3}"
    );
}

#[test]
fn every_benchmark_completes_under_every_system() {
    let cfg = EngineConfig::paper_default();
    for bench in Puma::ALL {
        // small inputs: completion + accounting, not performance
        let job = bench.job(0, 4.0 * 1024.0, 16, Default::default());
        for sys in System::all() {
            let r = run_once(&cfg, vec![job.clone()], &sys, 7)
                .unwrap_or_else(|e| panic!("{} under {} failed: {e}", bench.name(), sys.label()));
            let j = &r.jobs[0];
            assert_eq!(j.num_maps, 32, "{}: 4 GB = 32 blocks", bench.name());
            assert!(j.maps_done_at <= j.finished_at);
            // shuffle volume equals input × selectivity
            let expected = j.input_mb * bench.profile().map_selectivity;
            assert!(
                (j.shuffle_mb - expected).abs() < 1e-6,
                "{}: shuffle {} vs expected {expected}",
                bench.name(),
                j.shuffle_mb
            );
        }
    }
}

#[test]
fn class_dictates_tail_weight() {
    // reduce-heavy jobs spend a large share of the run after the barrier;
    // map-heavy jobs almost none
    let cfg = EngineConfig::paper_default();
    let tail_share = |bench: Puma| {
        let r = run_once(&cfg, vec![job(bench)], &System::HadoopV1, 3).unwrap();
        let j = &r.jobs[0];
        j.reduce_time().as_secs_f64() / j.total_time().as_secs_f64()
    };
    let grep = tail_share(Puma::Grep);
    let terasort = tail_share(Puma::Terasort);
    assert!(grep < 0.1, "map-heavy tail share {grep}");
    assert!(terasort > 0.25, "reduce-heavy tail share {terasort}");
}

#[test]
fn smapreduce_adapts_and_baselines_do_not() {
    let cfg = EngineConfig::paper_default();
    let v1 = run_once(&cfg, vec![job(Puma::WordCount)], &System::HadoopV1, 1).unwrap();
    assert_eq!(v1.slot_changes, 0);
    let smr = run_once(&cfg, vec![job(Puma::WordCount)], &System::SMapReduce, 1).unwrap();
    assert!(smr.slot_changes > 0, "the slot manager must act");
    // the SMR slot series must actually vary over time
    let values: Vec<f64> = smr.map_slot_series.points().iter().map(|p| p.1).collect();
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(max > min, "slot series must vary: {min}..{max}");
}

#[test]
fn run_reports_are_internally_consistent() {
    let cfg = EngineConfig::paper_default();
    for sys in System::all() {
        let r = run_once(&cfg, vec![job(Puma::InvertedIndex)], &sys, 5).unwrap();
        let j = &r.jobs[0];
        assert_eq!(
            j.map_time().as_millis() + j.reduce_time().as_millis(),
            j.total_time().as_millis()
        );
        let (_, final_progress) = j.progress.last().unwrap();
        assert!(final_progress >= 200.0 - 1e-6);
        assert!(j.throughput() > 0.0);
    }
}

#[test]
fn locality_preference_keeps_most_maps_local() {
    // 3x replication over 16 nodes with locality-first assignment: the
    // bulk of map attempts should be data-local
    let cfg = EngineConfig::paper_default();
    let r = run_once(&cfg, vec![job(Puma::Grep)], &System::HadoopV1, 9).unwrap();
    let frac = r.jobs[0].local_map_fraction;
    assert!(
        frac > 0.5,
        "locality-first scheduling should keep most maps local: {frac}"
    );
    assert!(frac <= 1.0);
}

#[test]
fn task_duration_summaries_are_populated() {
    let cfg = EngineConfig::paper_default();
    let r = run_once(&cfg, vec![job(Puma::WordCount)], &System::SMapReduce, 9).unwrap();
    let j = &r.jobs[0];
    let m = j.map_task_durations.expect("map durations recorded");
    assert_eq!(m.n, j.num_maps);
    assert!(m.min > 0.0 && m.min <= m.p50 && m.p50 <= m.p95 && m.p95 <= m.max);
    let rd = j.reduce_task_durations.expect("reduce durations recorded");
    assert_eq!(rd.n, j.num_reduces);
}

#[test]
fn smapreduce_raises_cpu_utilisation() {
    // the paper's stated goal: "make full utilisation of the CPU and
    // network resources" — on a map-heavy job the slot manager must
    // lift cluster CPU utilisation well above the static 3-slot config
    let cfg = EngineConfig::paper_default();
    let v1 = run_once(
        &cfg,
        vec![job(Puma::HistogramRatings)],
        &System::HadoopV1,
        4,
    )
    .unwrap();
    let smr = run_once(
        &cfg,
        vec![job(Puma::HistogramRatings)],
        &System::SMapReduce,
        4,
    )
    .unwrap();
    assert!(
        smr.cpu_utilisation > v1.cpu_utilisation * 1.1,
        "SMR {:.2} vs V1 {:.2}",
        smr.cpu_utilisation,
        v1.cpu_utilisation
    );
    assert!(v1.cpu_utilisation > 0.05 && v1.cpu_utilisation <= 1.0);
    assert!(smr.cpu_utilisation <= 1.0);
}

#[test]
fn network_volume_tracks_shuffle_size() {
    let cfg = EngineConfig::paper_default();
    let grep = run_once(&cfg, vec![job(Puma::Grep)], &System::HadoopV1, 4).unwrap();
    let sort = run_once(&cfg, vec![job(Puma::Terasort)], &System::HadoopV1, 4).unwrap();
    assert!(
        sort.network_mb > grep.network_mb * 5.0,
        "reduce-heavy moves far more bytes: {} vs {}",
        sort.network_mb,
        grep.network_mb
    );
    // network volume bounded by shuffle + remote reads <= ~2x input
    assert!(sort.network_mb <= sort.jobs[0].input_mb * 2.0);
}

//! Batched-sweep determinism guarantees: the bounded worker pool is an
//! execution strategy, not a semantic change. The same grid must produce
//! byte-identical per-cell reports at every worker count and match the
//! legacy sequential path cell for cell, and the arena recycling that
//! makes the pool allocation-free must never leak one cell's state into
//! the next cell run in the same slot.

use harness::runner::{prepare_warm, run_once, run_once_in, run_warm};
use harness::{run_cells_with, CellRequest, System};
use mapreduce::{EngineArena, EngineConfig, JobSpec};
use proptest::proptest;
use simgrid::cluster::NodeId;
use simgrid::time::{SimDuration, SimTime};
use simgrid::{FaultPlan, NodeFault};
use std::sync::Arc;
use workloads::Puma;

fn job(input_mb: f64) -> JobSpec {
    Puma::Grep.job(0, input_mb, 8, SimTime::ZERO)
}

/// A mixed grid: cold and warm cells, all three systems, two loads, and
/// one faulted cell — every dispatch shape the drivers use.
fn grid() -> Vec<CellRequest> {
    let cfg = EngineConfig::small_test(4, 0);
    let warm = Arc::new(prepare_warm(&cfg, vec![job(1024.0)], 9).expect("prepare"));
    let mut faulted = cfg.clone();
    faulted.fault_plan = FaultPlan::new(vec![NodeFault::transient(
        NodeId(1),
        SimTime::from_secs(30),
        SimDuration::from_secs(90),
    )]);
    let mut cells = Vec::new();
    for (i, sys) in System::all().into_iter().enumerate() {
        cells.push(CellRequest::cold(
            cfg.clone(),
            vec![job(512.0)],
            sys.clone(),
            i as u64 + 1,
        ));
        cells.push(CellRequest::cold(
            cfg.clone(),
            vec![job(1536.0)],
            sys.clone(),
            i as u64 + 100,
        ));
        cells.push(CellRequest::warm(
            Arc::clone(&warm),
            cfg.clone(),
            sys.clone(),
            9,
        ));
        cells.push(CellRequest::warm(
            Arc::clone(&warm),
            faulted.clone(),
            sys,
            9,
        ));
    }
    cells
}

fn fingerprints(cells: &[CellRequest], workers: usize) -> Vec<String> {
    run_cells_with(workers, cells)
        .reports
        .iter()
        .map(|r| serde_json::to_string(r.as_ref().expect("cell completes")).unwrap())
        .collect()
}

#[test]
fn per_cell_reports_are_identical_across_worker_counts() {
    let cells = grid();
    let one = fingerprints(&cells, 1);
    let two = fingerprints(&cells, 2);
    let many = fingerprints(
        &cells,
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    );
    assert_eq!(one.len(), cells.len());
    for (i, a) in one.iter().enumerate() {
        assert_eq!(a, &two[i], "cell {i}: 1 vs 2 workers");
        assert_eq!(a, &many[i], "cell {i}: 1 vs available_parallelism workers");
    }
}

#[test]
fn pooled_reports_match_the_legacy_sequential_path() {
    let cfg = EngineConfig::small_test(4, 0);
    let warm = Arc::new(prepare_warm(&cfg, vec![job(1024.0)], 9).expect("prepare"));
    let mut faulted = cfg.clone();
    faulted.fault_plan = FaultPlan::new(vec![NodeFault::transient(
        NodeId(1),
        SimTime::from_secs(30),
        SimDuration::from_secs(90),
    )]);
    let pooled = fingerprints(&grid(), 3);
    let mut legacy = Vec::new();
    for (i, sys) in System::all().into_iter().enumerate() {
        legacy.push(run_once(&cfg, vec![job(512.0)], &sys, i as u64 + 1).unwrap());
        legacy.push(run_once(&cfg, vec![job(1536.0)], &sys, i as u64 + 100).unwrap());
        legacy.push(run_warm(&warm, &cfg, &sys, 9).unwrap());
        legacy.push(run_warm(&warm, &faulted, &sys, 9).unwrap());
    }
    assert_eq!(pooled.len(), legacy.len());
    for (i, want) in legacy.iter().enumerate() {
        assert_eq!(
            pooled[i],
            serde_json::to_string(want).unwrap(),
            "cell {i} diverged from the legacy path"
        );
    }
}

proptest! {
    /// Arena reset-in-place leaks nothing: whatever cell A left behind in
    /// the recycled buffers, cell B run after it in the same arena slot is
    /// byte-identical to cell B run in a fresh arena.
    #[test]
    fn arena_recycling_leaks_no_state_between_cells(
        seed_a in 0u64..10_000,
        seed_b in 0u64..10_000,
        load_a in 0usize..3,
        load_b in 0usize..3,
        sys_pick in 0usize..9,
    ) {
        let loads = [512.0, 1024.0, 1536.0];
        let systems = System::all();
        let sys_a = &systems[sys_pick % 3];
        let sys_b = &systems[sys_pick / 3];
        // cells deliberately differ in shape so A's leftovers would be
        // the wrong size for B if reset-in-place ever missed a buffer
        let cfg_a = EngineConfig::small_test(4, seed_a);
        let cfg_b = EngineConfig::small_test(3, seed_b);

        let mut shared = EngineArena::new();
        let _a = run_once_in(&cfg_a, vec![job(loads[load_a])], sys_a, seed_a, &mut shared)
            .expect("cell A completes");
        let recycled = run_once_in(&cfg_b, vec![job(loads[load_b])], sys_b, seed_b, &mut shared)
            .expect("cell B completes recycled");

        let mut fresh_arena = EngineArena::new();
        let fresh = run_once_in(&cfg_b, vec![job(loads[load_b])], sys_b, seed_b, &mut fresh_arena)
            .expect("cell B completes fresh");

        assert_eq!(
            serde_json::to_string(&recycled).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "recycled arena changed cell B's result"
        );
        assert_eq!(shared.cells_served(), 2);
        assert_eq!(shared.cells_recycled(), 1, "cell B recycled A's arena");
    }
}

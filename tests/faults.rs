//! Whole-node crash recovery, end to end through the public API.
//!
//! The engine's own unit tests pin the recovery mechanics (kill, requeue,
//! lost-output re-execution, blacklisting); these tests drive the same
//! path at paper scale through `harness::run_once` and check the
//! contract a user of the stack sees: recovery-on runs complete and
//! report what they re-did, recovery-off runs fail with a diagnosable
//! error, faulted runs stay deterministic, and no crash — at any instant
//! — lets the engine claim completion without having processed every
//! byte of input at least once.

use harness::{run_once, System};
use mapreduce::EngineConfig;
use simgrid::cluster::NodeId;
use simgrid::error::SimError;
use simgrid::time::{SimDuration, SimTime};
use simgrid::{FaultPlan, NodeFault};
use workloads::Puma;

fn job(input_mb: f64) -> mapreduce::JobSpec {
    Puma::SequenceCount.job(0, input_mb, 20, Default::default())
}

/// A crash instant in the middle of the map phase: 5/8 of the fault-free
/// map barrier (mid second wave, so maps and early reduces are in
/// flight), rounded onto the 3 s heartbeat grid.
fn mid_map_instant(cfg: &EngineConfig, sys: &System, input_mb: f64) -> SimTime {
    let base = run_once(cfg, vec![job(input_mb)], sys, cfg.seed).expect("fault-free baseline");
    let ms = base.jobs[0].maps_done_at.as_millis() * 5 / 8;
    SimTime::from_millis((ms / 3000).max(1) * 3000)
}

#[test]
fn paper_scale_mid_map_crash_recovers_and_reports_reexecution() {
    // enough blocks that the map phase runs multiple waves even under
    // SMapReduce's boosted slot targets — the crash must land after some
    // maps completed on the doomed node, or there is no output to lose
    let input = 24.0 * 1024.0;
    let mut cfg = EngineConfig::paper_default();
    let crash_at = mid_map_instant(&cfg, &System::SMapReduce, input);
    cfg.fault_plan = FaultPlan::new(vec![NodeFault::permanent(NodeId(3), crash_at)]);
    let report = run_once(&cfg, vec![job(input)], &System::SMapReduce, cfg.seed)
        .expect("recovery-on run completes despite the crash");
    assert_eq!(report.node_crashes, 1);
    assert!(
        report.crash_task_kills > 0,
        "a mid-map crash kills in-flight attempts"
    );
    assert!(
        report.lost_map_outputs > 0,
        "completed outputs on the dead node are re-executed and reported"
    );
    // work conservation: re-execution only ever adds processed bytes
    assert!(
        report.map_input_processed_mb >= input - 1e-3,
        "processed {} MB of {input} MB input",
        report.map_input_processed_mb
    );
}

#[test]
fn recovery_off_surfaces_node_lost_not_a_hang() {
    let input = 6.0 * 1024.0;
    let mut cfg = EngineConfig::paper_default();
    let crash_at = mid_map_instant(&cfg, &System::HadoopV1, input);
    cfg.fault_plan = FaultPlan::new(vec![NodeFault::permanent(NodeId(3), crash_at)]);
    cfg.fault_recovery = false;
    match run_once(&cfg, vec![job(input)], &System::HadoopV1, cfg.seed) {
        Err(SimError::NodeLost { node, .. }) => assert_eq!(node, NodeId(3)),
        other => panic!("expected NodeLost, got {other:?}"),
    }
}

#[test]
fn faulted_runs_are_byte_identical_across_repeats() {
    let input = 1536.0;
    let mut cfg = EngineConfig::small_test(4, 7);
    cfg.record_events = true;
    cfg.fault_plan = FaultPlan::new(vec![NodeFault::transient(
        NodeId(1),
        SimTime::from_secs(21),
        SimDuration::from_secs(60),
    )]);
    for sys in [System::HadoopV1, System::SMapReduce] {
        let a = run_once(&cfg, vec![job(input)], &sys, 4242).unwrap();
        let b = run_once(&cfg, vec![job(input)], &sys, 4242).unwrap();
        assert!(a.node_crashes > 0, "{}: the fault fired", sys.label());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{}: faulted reports byte-identical",
            sys.label()
        );
    }
}

proptest::proptest! {
    /// Crash any node at any instant — grid-aligned or not, before,
    /// during or after the run — and the engine either completes having
    /// processed every input byte at least once (re-execution only adds
    /// work) or fails with the one sanctioned error. No silent loss, no
    /// third outcome.
    #[test]
    fn prop_crash_at_any_instant_conserves_work(
        seed in 0u64..1000,
        crash_ms in 1u64..240_000,
        node in 0usize..4,
        permanent in 0u32..2,
    ) {
        let input = 512.0;
        let mut cfg = EngineConfig::small_test(4, seed);
        let fault = if permanent == 1 {
            NodeFault::permanent(NodeId(node), SimTime::from_millis(crash_ms))
        } else {
            NodeFault::transient(
                NodeId(node),
                SimTime::from_millis(crash_ms),
                SimDuration::from_secs(90),
            )
        };
        cfg.fault_plan = FaultPlan::new(vec![fault]);
        match run_once(&cfg, vec![job(input)], &System::SMapReduce, seed) {
            Ok(report) => proptest::prop_assert!(
                report.map_input_processed_mb >= input - 1e-3,
                "completed having processed only {} of {} MB",
                report.map_input_processed_mb, input
            ),
            Err(SimError::NodeLost { .. }) => {}
            Err(other) => proptest::prop_assert!(false, "unexpected error: {other}"),
        }
    }
}

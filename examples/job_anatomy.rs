//! Job anatomy: replay one job's task-lifecycle event log as a timeline —
//! wave structure, the barrier, shuffle completions, and (under
//! SMapReduce) the slot-target changes interleaved with them.
//!
//! ```text
//! cargo run --release --example job_anatomy [benchmark] [input_gb]
//! ```

use harness::{run_once, System};
use mapreduce::{EngineConfig, Event};
use workloads::Puma;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .and_then(|n| Puma::from_name(&n))
        .unwrap_or(Puma::InvertedIndex);
    let input_gb: f64 = args
        .next()
        .map(|s| s.parse().expect("input_gb"))
        .unwrap_or(6.0);

    let mut cfg = EngineConfig::paper_default();
    cfg.record_events = true;
    let job = bench.job(0, input_gb * 1024.0, 30, Default::default());
    let report = run_once(&cfg, vec![job], &System::SMapReduce, cfg.seed).expect("simulation");

    println!(
        "{} ({:.0} GB) under SMapReduce — {} events\n",
        bench.name(),
        input_gb,
        report.events.len()
    );

    // aggregate per-second counters for a compact timeline
    let mut last_sec = u64::MAX;
    let (mut ml, mut mc, mut sc) = (0usize, 0usize, 0usize);
    let flush = |sec: u64, ml: &mut usize, mc: &mut usize, sc: &mut usize| {
        if *ml + *mc + *sc > 0 {
            println!(
                "  t={sec:>4}s  +{:<2} maps launched  +{:<2} maps done  +{:<2} shuffles done",
                ml, mc, sc
            );
        }
        (*ml, *mc, *sc) = (0, 0, 0);
    };
    for e in report.events.events() {
        let sec = e.at().as_millis() / 1000;
        if sec != last_sec && last_sec != u64::MAX && (sec / 10) != (last_sec / 10) {
            flush(last_sec, &mut ml, &mut mc, &mut sc);
        }
        last_sec = sec;
        match e {
            Event::MapLaunched { .. } => ml += 1,
            Event::MapCompleted { .. } => mc += 1,
            Event::ShuffleCompleted { .. } => sc += 1,
            Event::BarrierCrossed { at, .. } => {
                flush(sec, &mut ml, &mut mc, &mut sc);
                println!(
                    "  t={:>4.0}s  ──── BARRIER: last map finished ────",
                    at.as_secs_f64()
                );
            }
            Event::SlotTargetsChanged {
                at,
                node,
                map_slots,
                reduce_slots,
            } if node.0 == 0 => {
                // one representative tracker; targets are uniform
                println!(
                        "  t={:>4.0}s  slot targets -> {map_slots} map / {reduce_slots} reduce per node",
                        at.as_secs_f64()
                    );
            }
            Event::JobFinished { at, .. } => {
                flush(sec, &mut ml, &mut mc, &mut sc);
                println!("  t={:>4.0}s  job finished", at.as_secs_f64());
            }
            _ => {}
        }
    }

    let j = &report.jobs[0];
    println!(
        "\nmap {:.1}s | reduce {:.1}s | total {:.1}s | {} slot changes",
        j.map_time().as_secs_f64(),
        j.reduce_time().as_secs_f64(),
        j.total_time().as_secs_f64(),
        report.slot_changes
    );
}

//! Watch the slot manager think: run one benchmark under SMapReduce and
//! print every decision the manager takes (increments, decrements,
//! thrashing retreats, tail switches), next to the cluster-wide slot-count
//! trajectory — the anatomy behind Fig. 4's steepening progress curve.
//!
//! ```text
//! cargo run --release --example slot_manager_log [benchmark] [input_gb]
//! ```

use mapreduce::{Engine, EngineConfig};
use smapreduce::{Decision, SlotManagerPolicy};
use workloads::Puma;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .and_then(|n| Puma::from_name(&n))
        .unwrap_or(Puma::WordCount);
    let input_gb: f64 = args
        .next()
        .map(|s| s.parse().expect("input_gb"))
        .unwrap_or(30.0);

    let cfg = EngineConfig::paper_default();
    let mut policy = SlotManagerPolicy::paper_default();
    let job = bench.job(0, input_gb * 1024.0, 30, Default::default());
    let report = Engine::new(cfg)
        .run(vec![job], &mut policy)
        .expect("simulation");
    let j = &report.jobs[0];

    println!(
        "{} ({:.0} GB): map {:.1}s + reduce {:.1}s = {:.1}s total, {} slot changes\n",
        bench.name(),
        input_gb,
        j.map_time().as_secs_f64(),
        j.reduce_time().as_secs_f64(),
        j.total_time().as_secs_f64(),
        report.slot_changes
    );

    println!("slot-manager decisions with their audited inputs (Holds elided):");
    let mut holds = 0usize;
    for r in policy.audit.records() {
        match r.decision {
            Decision::Hold | Decision::SlowStartHold => holds += 1,
            other => {
                let f = r
                    .inputs
                    .f
                    .map(|f| format!("{f:.2}"))
                    .unwrap_or_else(|| "-".into());
                println!(
                    "  {:>7.1}s  {:<28} f={:<5} Rs={:>6.1} Rm={:>6.1} targets={}m/{}r ceiling={}",
                    r.at.as_secs_f64(),
                    format!("{other:?}"),
                    f,
                    r.inputs.rs,
                    r.inputs.rm,
                    r.map_target,
                    r.reduce_target,
                    r.ceiling
                        .map(|c| c.to_string())
                        .unwrap_or_else(|| "-".into()),
                );
            }
        }
    }
    println!("  (+ {holds} hold decisions)\n");

    println!("cluster map-slot trajectory (Σ targets over 16 trackers):");
    for (t, v) in report.map_slot_series.thinned(24) {
        let bar: String = "#".repeat((v / 8.0).round() as usize);
        println!("  {:>7.1}s {:>4} {}", t.as_secs_f64(), v as u64, bar);
    }
}

//! Bring your own workload: define a custom job profile with the builder
//! API, sanity-check its resource signature against the node model, and
//! run it under all three systems.
//!
//! ```text
//! cargo run --release --example custom_job
//! ```

use harness::{run_comparison, System};
use mapreduce::job::JobProfile;
use mapreduce::{EngineConfig, JobSpec};
use simgrid::node::{thrashing_point, NodeSpec};
use simgrid::time::SimTime;

fn main() {
    // A hypothetical click-stream sessionisation job: cheap map-side
    // parsing, a mid-size shuffle of session keys, memory-light tasks.
    let profile = JobProfile::builder("sessionize")
        .map_rate(6.5)
        .map_cpu(2.0)
        .map_threads(2)
        .map_mem(1400.0)
        .map_selectivity(0.30)
        .sort_rate(32.0)
        .reduce_rate(26.0)
        .shuffle_merge_rate(35.0)
        .build();

    // Where will this job thrash? Ask the substrate before running.
    let node = NodeSpec::paper_worker();
    let knee = thrashing_point(&node, profile.map_demand(), 16);
    println!(
        "custom profile '{}': selectivity {:.2}, analytical thrashing point {} slots/node",
        profile.name, profile.map_selectivity, knee
    );
    println!("(the default HadoopV1 config is 3 — the slot manager has headroom to find)\n");

    let cfg = EngineConfig::paper_default();
    let job = JobSpec::new(0, profile, 24.0 * 1024.0, 30, SimTime::ZERO);
    let rows = run_comparison(&cfg, &[job], 1).expect("simulation");

    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>12}",
        "system", "map (s)", "reduce (s)", "total (s)", "thpt (MB/s)"
    );
    for r in &rows {
        println!(
            "{:<12} {:>9.1} {:>10.1} {:>9.1} {:>12.1}",
            r.system, r.map_time_s, r.reduce_time_s, r.total_time_s, r.throughput
        );
    }
    let _ = System::all(); // (the trio shown above)
}

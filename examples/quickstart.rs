//! Quickstart: run one PUMA benchmark under HadoopV1, YARN and SMapReduce
//! on the paper's 16-node testbed and compare the outcomes.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [input_gb]
//! ```

use harness::{run_comparison, Scale};
use mapreduce::EngineConfig;
use workloads::Puma;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .map(|name| {
            Puma::from_name(&name).unwrap_or_else(|| {
                eprintln!("unknown benchmark '{name}'; available:");
                for p in Puma::ALL {
                    eprintln!("  {}", p.name());
                }
                std::process::exit(2);
            })
        })
        .unwrap_or(Puma::HistogramRatings);
    let input_gb: f64 = args
        .next()
        .map(|s| s.parse().expect("input_gb must be a number"))
        .unwrap_or(20.0);

    println!(
        "Running {} on {:.0} GB over 16 simulated workers (3 map + 2 reduce slots)…\n",
        bench.name(),
        input_gb
    );

    let cfg = EngineConfig::paper_default();
    let job = bench.job(0, input_gb * 1024.0, 30, Default::default());
    let rows = run_comparison(&cfg, &[job], Scale::Quick.trials()).expect("simulation");

    println!(
        "{:<12} {:>9} {:>10} {:>9} {:>12}",
        "system", "map (s)", "reduce (s)", "total (s)", "thpt (MB/s)"
    );
    for r in &rows {
        println!(
            "{:<12} {:>9.1} {:>10.1} {:>9.1} {:>12.1}",
            r.system, r.map_time_s, r.reduce_time_s, r.total_time_s, r.throughput
        );
    }
    let v1 = &rows[0];
    let smr = &rows[2];
    println!(
        "\nSMapReduce throughput vs HadoopV1: {:+.0}%  (class: {:?})",
        (smr.throughput / v1.throughput - 1.0) * 100.0,
        bench.class()
    );
    println!(
        "slot changes applied by the slot manager: {}",
        smr.sample.slot_changes
    );
}

//! Thrashing explorer: the substrate view of §II-B. For a chosen benchmark
//! this prints (a) the *analytical* per-node throughput curve from the
//! contention model and (b) the *measured* map-phase throughput from full
//! simulations with the slot count pinned — the two ways of seeing Fig. 1's
//! rise-then-fall curve and the knee the slot manager hunts for.
//!
//! ```text
//! cargo run --release --example thrashing_explorer [benchmark] [max_slots]
//! ```

use harness::{run_once, System};
use mapreduce::EngineConfig;
use simgrid::node::{thrashing_point, total_throughput, NodeSpec};
use workloads::Puma;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .and_then(|n| Puma::from_name(&n))
        .unwrap_or(Puma::TermVector);
    let max_slots: usize = args
        .next()
        .map(|s| s.parse().expect("max_slots"))
        .unwrap_or(10);

    let profile = bench.profile();
    let node = NodeSpec::paper_worker();
    let demand = profile.map_demand();

    println!(
        "{} — map task demand: {:.1} cores, {} threads, {:.0} MB resident, \
         {:.0}+{:.0} MB/s disk\n",
        bench.name(),
        demand.cpu_cores,
        demand.threads,
        demand.mem_mb,
        demand.disk_read,
        demand.disk_write
    );

    println!(
        "{:<6} {:>18} {:>22}",
        "slots", "model thpt (rel)", "simulated map MB/s"
    );
    for slots in 1..=max_slots {
        // analytical: sum of task rate scales from the node model
        let model = total_throughput(&node, demand, slots);
        // measured: pin the slot count, run the whole framework
        let mut cfg = EngineConfig::paper_default();
        cfg.init_map_slots = slots;
        let job = bench.job(0, 8.0 * 1024.0, 30, Default::default());
        let report = run_once(&cfg, vec![job], &System::HadoopV1, cfg.seed).expect("sim");
        let j = &report.jobs[0];
        let measured = j.input_mb / j.map_time().as_secs_f64();
        println!("{slots:<6} {model:>18.2} {measured:>22.1}");
    }
    println!(
        "\nmodel thrashing point: {} slots/node",
        thrashing_point(&node, demand, max_slots)
    );
    println!("(SMapReduce's detector finds this knee online, from heartbeat rates)");
}

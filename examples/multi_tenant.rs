//! Multi-tenant cluster: the paper's §V-F scenario — four identical jobs
//! submitted five seconds apart — shown per job, so the queueing behaviour
//! of the FIFO scheduler and the benefit of runtime slot management are
//! both visible.
//!
//! ```text
//! cargo run --release --example multi_tenant [benchmark] [jobs] [input_gb]
//! ```

use harness::{run_once, System};
use mapreduce::EngineConfig;
use simgrid::time::SimDuration;
use workloads::{staggered_jobs, Puma};

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args
        .next()
        .and_then(|n| Puma::from_name(&n))
        .unwrap_or(Puma::Grep);
    let count: usize = args.next().map(|s| s.parse().expect("jobs")).unwrap_or(4);
    let input_gb: f64 = args
        .next()
        .map(|s| s.parse().expect("input_gb"))
        .unwrap_or(8.0);

    let jobs = staggered_jobs(
        bench,
        count,
        input_gb * 1024.0,
        30,
        SimDuration::from_secs(5),
    );
    println!(
        "{count} {} jobs of {:.0} GB each, submitted 5 s apart\n",
        bench.name(),
        input_gb
    );

    let cfg = EngineConfig::paper_default();
    for sys in System::all() {
        let report = run_once(&cfg, jobs.clone(), &sys, cfg.seed).expect("simulation");
        println!("== {}", report.policy);
        println!(
            "   {:<6} {:>10} {:>10} {:>10} {:>12}",
            "job", "submit(s)", "start(s)", "finish(s)", "exec time(s)"
        );
        for j in &report.jobs {
            println!(
                "   {:<6} {:>10.1} {:>10.1} {:>10.1} {:>12.1}",
                j.job.0,
                j.submit_at.as_secs_f64(),
                j.started_at.as_secs_f64(),
                j.finished_at.as_secs_f64(),
                j.execution_time().as_secs_f64()
            );
        }
        println!(
            "   mean execution {:.1}s, last job finishes at {:.1}s\n",
            report.mean_execution_time().as_secs_f64(),
            report.makespan().as_secs_f64()
        );
    }
}

//! # smapreduce-repro — the umbrella crate
//!
//! A complete, self-contained reproduction of *SMapReduce: Optimising
//! Resource Allocation by Managing Working Slots at Runtime* (Liang & Lau,
//! IPPS 2015) in pure Rust. This crate re-exports the workspace members
//! and hosts the runnable `examples/`, the cross-crate `tests/` and the
//! `smrsim` ad-hoc CLI.
//!
//! Layer by layer (bottom-up):
//!
//! * [`simgrid`] — deterministic cluster substrate: per-node CPU/memory/
//!   disk contention with a thrashing knee, a max-min-fair network fabric
//!   with TCP-incast decay, integer-millisecond clocks, seeded RNG
//!   streams, time-series and summary metrics.
//! * [`dfs`] — HDFS-like block store: 128 MB blocks, 3× replication on
//!   distinct nodes, locality queries.
//! * [`mapreduce`] — the slot-based Hadoop 1.x framework the paper
//!   patches: FIFO/Fair job tracker, lazy slot sets, heartbeat statistics,
//!   map/reduce phase machines, the map→reduce barrier, speculative
//!   execution, failure injection, event logging.
//! * [`yarn`] — the container baseline: per-node resource budget, capacity
//!   scheduling with map priority, container sizing.
//! * [`smapreduce`] — the paper's contribution: the slot manager (balance
//!   factor, thrashing detection, slow start, tail switching) plus the
//!   §VII heterogeneous-cluster extension.
//! * [`workloads`] — the thirteen PUMA benchmark profiles and workload
//!   generators.
//! * [`harness`] — one module per paper figure, the extension and
//!   validation experiments, and the `reproduce` binary.
//!
//! ## Thirty-second tour
//!
//! ```
//! use mapreduce::{Engine, EngineConfig};
//! use smapreduce::SlotManagerPolicy;
//! use workloads::Puma;
//!
//! // the paper's 16-worker testbed, a 4 GB HistogramRatings job
//! let cfg = EngineConfig::paper_default();
//! let job = Puma::HistogramRatings.job(0, 4096.0, 16, Default::default());
//! let mut policy = SlotManagerPolicy::paper_default();
//! let report = Engine::new(cfg).run(vec![job], &mut policy).unwrap();
//!
//! let j = &report.jobs[0];
//! assert!(j.throughput() > 0.0);
//! assert!(report.slot_changes > 0, "the slot manager adapted at runtime");
//! ```
//!
//! See `README.md` for the architecture diagram, `DESIGN.md` for the
//! paper-to-module mapping, and `EXPERIMENTS.md` for paper-vs-measured
//! results on every figure.

pub use {dfs, harness, mapreduce, simgrid, smapreduce, workloads, yarn};

//! `smrsim` — ad-hoc simulation runs from the command line.
//!
//! ```text
//! smrsim run [--bench NAME] [--input-gb N] [--system v1|yarn|smr|hetero]
//!            [--workers N] [--map-slots N] [--reduce-slots N] [--reduces N]
//!            [--seed N] [--jitter F] [--failure-rate F] [--straggler-rate F]
//!            [--speculate] [--events] [--json FILE]
//! smrsim list                      # available benchmarks
//! smrsim knee [--bench NAME]      # analytical thrashing point
//! ```

use harness::{run_once, System};
use mapreduce::EngineConfig;
use simgrid::cluster::ClusterSpec;
use simgrid::node::{thrashing_point, total_throughput, NodeSpec};
use std::process::ExitCode;
use workloads::Puma;

const USAGE: &str = "usage: smrsim <run|list|knee> [options]; see --help in the source header";

#[derive(Debug)]
struct RunOpts {
    bench: Puma,
    input_gb: f64,
    system: System,
    workers: usize,
    map_slots: usize,
    reduce_slots: usize,
    reduces: usize,
    seed: u64,
    jitter: f64,
    failure_rate: f64,
    straggler_rate: f64,
    speculate: bool,
    events: bool,
    json: Option<String>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            bench: Puma::HistogramRatings,
            input_gb: 20.0,
            system: System::SMapReduce,
            workers: 16,
            map_slots: 3,
            reduce_slots: 2,
            reduces: 30,
            seed: 42,
            jitter: 0.2,
            failure_rate: 0.0,
            straggler_rate: 0.0,
            speculate: false,
            events: false,
            json: None,
        }
    }
}

fn parse_bench(name: &str) -> Result<Puma, String> {
    Puma::from_name(name).ok_or_else(|| {
        let names: Vec<&str> = Puma::ALL.iter().map(|p| p.name()).collect();
        format!(
            "unknown benchmark '{name}'; available: {}",
            names.join(", ")
        )
    })
}

fn parse_system(name: &str) -> Result<System, String> {
    match name.to_ascii_lowercase().as_str() {
        "v1" | "hadoopv1" | "hadoop" => Ok(System::HadoopV1),
        "yarn" => Ok(System::Yarn),
        "smr" | "smapreduce" => Ok(System::SMapReduce),
        "hetero" | "smr-hetero" => Ok(System::SMapReduceHetero),
        other => Err(format!("unknown system '{other}' (v1|yarn|smr|hetero)")),
    }
}

fn parse_run(mut args: std::env::Args) -> Result<RunOpts, String> {
    let mut o = RunOpts::default();
    while let Some(a) = args.next() {
        let mut val = || args.next().ok_or(format!("{a} needs a value"));
        match a.as_str() {
            "--bench" => o.bench = parse_bench(&val()?)?,
            "--input-gb" => o.input_gb = val()?.parse().map_err(|e| format!("{e}"))?,
            "--system" => o.system = parse_system(&val()?)?,
            "--workers" => o.workers = val()?.parse().map_err(|e| format!("{e}"))?,
            "--map-slots" => o.map_slots = val()?.parse().map_err(|e| format!("{e}"))?,
            "--reduce-slots" => o.reduce_slots = val()?.parse().map_err(|e| format!("{e}"))?,
            "--reduces" => o.reduces = val()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => o.seed = val()?.parse().map_err(|e| format!("{e}"))?,
            "--jitter" => o.jitter = val()?.parse().map_err(|e| format!("{e}"))?,
            "--failure-rate" => o.failure_rate = val()?.parse().map_err(|e| format!("{e}"))?,
            "--straggler-rate" => o.straggler_rate = val()?.parse().map_err(|e| format!("{e}"))?,
            "--speculate" => o.speculate = true,
            "--events" => o.events = true,
            "--json" => o.json = Some(val()?),
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    Ok(o)
}

fn cmd_run(o: RunOpts) -> Result<(), String> {
    let mut cfg = EngineConfig::paper_default();
    cfg.cluster = ClusterSpec::small(o.workers);
    cfg.init_map_slots = o.map_slots;
    cfg.init_reduce_slots = o.reduce_slots;
    cfg.seed = o.seed;
    cfg.jitter_amp = o.jitter;
    cfg.map_failure_rate = o.failure_rate;
    cfg.straggler_rate = o.straggler_rate;
    cfg.speculative_maps = o.speculate;
    cfg.record_events = o.events;

    let job = o
        .bench
        .job(0, o.input_gb * 1024.0, o.reduces, Default::default());
    let report = run_once(&cfg, vec![job], &o.system, o.seed).map_err(|e| e.to_string())?;
    let j = &report.jobs[0];

    println!(
        "{} ({:.0} GB, {:?}) under {} on {} workers ({} map + {} reduce slots)",
        o.bench.name(),
        o.input_gb,
        o.bench.class(),
        report.policy,
        o.workers,
        o.map_slots,
        o.reduce_slots
    );
    println!(
        "  map {:.1}s | reduce {:.1}s | total {:.1}s | throughput {:.1} MB/s",
        j.map_time().as_secs_f64(),
        j.reduce_time().as_secs_f64(),
        j.total_time().as_secs_f64(),
        j.throughput()
    );
    if let Some(d) = &j.map_task_durations {
        println!(
            "  map tasks: n={} mean {:.1}s p50 {:.1}s p95 {:.1}s max {:.1}s",
            d.n, d.mean, d.p50, d.p95, d.max
        );
    }
    println!(
        "  slot changes {} | speculative {}/{} | failures {}",
        report.slot_changes,
        report.speculative_wins,
        report.speculative_attempts,
        report.map_failures
    );
    if o.events {
        println!("  events recorded: {}", report.events.len());
    }
    if let Some(path) = o.json {
        let payload = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(&path, payload).map_err(|e| e.to_string())?;
        println!("  [wrote {path}]");
    }
    Ok(())
}

fn cmd_list() {
    println!(
        "{:<22} {:<12} {:>12} {:>10}",
        "benchmark", "class", "selectivity", "map MB/s"
    );
    for p in Puma::ALL {
        let prof = p.profile();
        println!(
            "{:<22} {:<12} {:>12.3} {:>10.1}",
            p.name(),
            format!("{:?}", p.class()),
            prof.map_selectivity,
            prof.map_rate
        );
    }
}

fn cmd_knee(mut args: std::env::Args) -> Result<(), String> {
    let mut bench = Puma::Terasort;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bench" => {
                bench = parse_bench(&args.next().ok_or("--bench needs a value")?)?;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    let spec = NodeSpec::paper_worker();
    let demand = bench.profile().map_demand();
    println!("{} map-task demand: {demand:?}", bench.name());
    println!("{:<6} {:>10}", "slots", "rel thpt");
    for n in 1..=12 {
        println!("{n:<6} {:>10.2}", total_throughput(&spec, demand, n));
    }
    println!(
        "analytical thrashing point: {} slots/node",
        thrashing_point(&spec, demand, 16)
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    let result = match args.next().as_deref() {
        Some("run") => parse_run(args).and_then(cmd_run),
        Some("list") => {
            cmd_list();
            Ok(())
        }
        Some("knee") => cmd_knee(args),
        Some("--help") | Some("-h") | None => Err(USAGE.to_string()),
        Some(other) => Err(format!("unknown command {other}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
